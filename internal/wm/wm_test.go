package wm

import (
	"testing"

	"clam/internal/dynload"
	"clam/internal/task"
)

func TestScreenFillAndPixels(t *testing.T) {
	s := NewScreen(32, 16, nil)
	if s.Width() != 32 || s.Height() != 16 {
		t.Fatalf("size %dx%d", s.Width(), s.Height())
	}
	s.Fill(R(2, 2, 4, 4), 9)
	if s.PixelAt(3, 3) != 9 || s.PixelAt(1, 1) != 0 {
		t.Error("fill wrong pixels")
	}
	if s.PixelAt(-1, 0) != -1 || s.PixelAt(99, 0) != -1 {
		t.Error("out-of-range reads")
	}
	if s.CountColor(9) != 16 {
		t.Errorf("CountColor = %d", s.CountColor(9))
	}
	if len(s.Snapshot()) != 32*16 {
		t.Error("snapshot size")
	}
}

func TestScreenClipsDrawing(t *testing.T) {
	s := NewScreen(10, 10, nil)
	s.Fill(R(8, 8, 10, 10), 5) // mostly off-screen
	if s.CountColor(5) != 4 {
		t.Errorf("clipped fill painted %d pixels", s.CountColor(5))
	}
}

func TestScreenDamage(t *testing.T) {
	s := NewScreen(20, 20, nil)
	s.Fill(R(0, 0, 5, 5), 1)
	s.Fill(R(10, 10, 5, 5), 2)
	d := s.TakeDamage()
	area := 0
	for _, r := range d {
		area += r.Area()
	}
	if area != 50 {
		t.Errorf("damage area = %d", area)
	}
	if len(s.TakeDamage()) != 0 {
		t.Error("damage not reset")
	}
}

func TestScreenBorder(t *testing.T) {
	s := NewScreen(10, 10, nil)
	s.Border(R(0, 0, 10, 10), 7)
	if s.CountColor(7) != 4*10-4 {
		t.Errorf("border painted %d pixels", s.CountColor(7))
	}
	if s.PixelAt(5, 5) != 0 {
		t.Error("border filled interior")
	}
}

func TestScreenInputInline(t *testing.T) {
	s := NewScreen(10, 10, nil)
	var got []MouseEvent
	s.PostInput(func(ev MouseEvent) { got = append(got, ev) })
	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 1, Y: 2})
	if len(got) != 1 || got[0].X != 1 {
		t.Fatalf("got %v", got)
	}
	if s.InputCount() != 1 {
		t.Errorf("InputCount = %d", s.InputCount())
	}
	var keys []KeyEvent
	s.PostKey(func(ev KeyEvent) { keys = append(keys, ev) })
	s.InjectKey(KeyEvent{Code: 65, Down: true})
	if len(keys) != 1 || keys[0].Code != 65 {
		t.Fatalf("keys %v", keys)
	}
}

func TestScreenInputViaTasks(t *testing.T) {
	sched := task.New()
	defer sched.Close()
	s := NewScreen(10, 10, sched)
	got := make(chan MouseEvent, 1)
	s.PostInput(func(ev MouseEvent) { got <- ev })
	s.InjectMouseWait(MouseEvent{Kind: MouseDown, X: 3, Y: 4})
	ev := <-got
	if ev.X != 3 || ev.Y != 4 {
		t.Errorf("ev = %v", ev)
	}
}

func TestWindowTreeRouting(t *testing.T) {
	s := NewScreen(100, 100, nil)
	base := NewBaseWindow(s)
	w1 := base.Create(R(10, 10, 30, 30), 1)
	w2 := base.Create(R(20, 20, 30, 30), 2) // overlaps w1, on top

	var got1, got2, gotBase []MouseEvent
	w1.PostMouse(func(ev MouseEvent) { got1 = append(got1, ev) })
	w2.PostMouse(func(ev MouseEvent) { got2 = append(got2, ev) })
	base.PostMouse(func(ev MouseEvent) { gotBase = append(gotBase, ev) })

	// In the overlap: w2 is topmost.
	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 25, Y: 25})
	if len(got2) != 1 || len(got1) != 0 {
		t.Fatalf("overlap routing: w1=%d w2=%d", len(got1), len(got2))
	}
	// Coordinates are translated into the window's space.
	if got2[0].X != 5 || got2[0].Y != 5 {
		t.Errorf("translated event %v", got2[0])
	}
	// Only over w1.
	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 12, Y: 12})
	if len(got1) != 1 || got1[0].X != 2 {
		t.Fatalf("w1 routing: %v", got1)
	}
	// Over neither: base gets it.
	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 90, Y: 90})
	if len(gotBase) != 1 {
		t.Fatalf("base routing: %d", len(gotBase))
	}
	if base.RoutedCount() != 3 {
		t.Errorf("RoutedCount = %d", base.RoutedCount())
	}
}

func TestWindowRaiseChangesRouting(t *testing.T) {
	s := NewScreen(100, 100, nil)
	base := NewBaseWindow(s)
	w1 := base.Create(R(10, 10, 30, 30), 1)
	w2 := base.Create(R(10, 10, 30, 30), 2)
	var got1, got2 int
	w1.PostMouse(func(MouseEvent) { got1++ })
	w2.PostMouse(func(MouseEvent) { got2++ })
	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 15, Y: 15})
	if got2 != 1 || got1 != 0 {
		t.Fatal("initial z-order wrong")
	}
	w1.Raise()
	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 15, Y: 15})
	if got1 != 1 {
		t.Error("raise did not change routing")
	}
}

func TestWindowDrawingAndGeometry(t *testing.T) {
	s := NewScreen(100, 100, nil)
	base := NewBaseWindow(s)
	w := base.Create(R(10, 10, 20, 20), 3)
	if s.CountColor(3) != 400 {
		t.Errorf("created window painted %d", s.CountColor(3))
	}
	inner := w.Create(R(5, 5, 5, 5), 4)
	if sr := inner.ScreenRect(); sr != R(15, 15, 5, 5) {
		t.Errorf("inner screen rect %v", sr)
	}
	if s.PixelAt(16, 16) != 4 {
		t.Error("nested window drawn at wrong place")
	}
	// A child partially outside its parent clips.
	edge := w.Create(R(18, 18, 10, 10), 5)
	if sr := edge.ScreenRect(); sr != R(28, 28, 2, 2) {
		t.Errorf("clipped screen rect %v", sr)
	}
}

func TestWindowMoveRepaints(t *testing.T) {
	s := NewScreen(50, 50, nil)
	base := NewBaseWindow(s)
	base.Fill(0)
	w := base.Create(R(0, 0, 10, 10), 6)
	w.MoveTo(20, 20)
	if s.PixelAt(5, 5) != 0 {
		t.Error("vacated area not repainted")
	}
	if s.PixelAt(25, 25) != 6 {
		t.Error("window not painted at new position")
	}
	if w.Bounds() != R(20, 20, 10, 10) {
		t.Errorf("bounds %v", w.Bounds())
	}
}

func TestWindowDestroy(t *testing.T) {
	s := NewScreen(50, 50, nil)
	base := NewBaseWindow(s)
	w := base.Create(R(5, 5, 10, 10), 6)
	if base.ChildCount() != 1 {
		t.Fatal("child not registered")
	}
	w.Destroy()
	if base.ChildCount() != 0 {
		t.Error("child not removed")
	}
	if s.PixelAt(8, 8) != 0 {
		t.Error("destroyed window still painted")
	}
	var got int
	w.PostMouse(func(MouseEvent) { got++ })
	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 8, Y: 8})
	if got != 0 {
		t.Error("destroyed window still receives events")
	}
}

func TestWindowVisibility(t *testing.T) {
	s := NewScreen(50, 50, nil)
	base := NewBaseWindow(s)
	w := base.Create(R(5, 5, 10, 10), 6)
	var got int
	w.PostMouse(func(MouseEvent) { got++ })
	w.SetVisible(false)
	if s.PixelAt(8, 8) == 6 {
		t.Error("hidden window still painted")
	}
	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 8, Y: 8})
	if got != 0 {
		t.Error("hidden window receives events")
	}
	w.SetVisible(true)
	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 8, Y: 8})
	if got != 1 {
		t.Error("shown window misses events")
	}
}

func TestSweepLifecycle(t *testing.T) {
	s := NewScreen(100, 100, nil)
	base := NewBaseWindow(s)
	sw := NewSweep()
	sw.Attach(base)

	var created []Rect
	sw.OnCreated(func(r Rect) { created = append(created, r) })

	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 10, Y: 10, Buttons: ButtonLeft})
	if !sw.Active() {
		t.Fatal("sweep not active after button down")
	}
	for x := int16(11); x <= 40; x++ {
		s.InjectMouse(MouseEvent{Kind: MouseMove, X: x, Y: x})
	}
	if sw.MoveCount() != 30 {
		t.Errorf("MoveCount = %d", sw.MoveCount())
	}
	if len(created) != 0 {
		t.Fatal("created before button up")
	}
	s.InjectMouse(MouseEvent{Kind: MouseUp, X: 40, Y: 50})
	if sw.Active() {
		t.Error("sweep still active")
	}
	if len(created) != 1 || created[0] != R(10, 10, 30, 40) {
		t.Fatalf("created = %v", created)
	}
	// The rubber band has been erased: only the base background remains.
	if s.CountColor(255) != 0 {
		t.Errorf("%d rubber-band pixels left", s.CountColor(255))
	}
}

func TestSweepGridAlignment(t *testing.T) {
	s := NewScreen(100, 100, nil)
	base := NewBaseWindow(s)
	sw := NewSweep()
	sw.Attach(base)
	sw.SetGrid(8)
	var created Rect
	sw.OnCreated(func(r Rect) { created = r })
	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 11, Y: 13})
	s.InjectMouse(MouseEvent{Kind: MouseUp, X: 29, Y: 30})
	if created != R(8, 8, 24, 24) {
		t.Errorf("snapped rect = %v", created)
	}
}

func TestSweepUpLeftDrag(t *testing.T) {
	s := NewScreen(100, 100, nil)
	base := NewBaseWindow(s)
	sw := NewSweep()
	sw.Attach(base)
	var created Rect
	sw.OnCreated(func(r Rect) { created = r })
	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 50, Y: 50})
	s.InjectMouse(MouseEvent{Kind: MouseUp, X: 30, Y: 40})
	if created != R(30, 40, 20, 10) {
		t.Errorf("created = %v", created)
	}
}

func TestSweepTransparentDrawsNothing(t *testing.T) {
	s := NewScreen(100, 100, nil)
	base := NewBaseWindow(s)
	sw := NewSweep()
	sw.Attach(base)
	sw.SetTransparent(true)
	painted := s.PaintCount()
	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 5, Y: 5})
	for x := int16(6); x < 30; x++ {
		s.InjectMouse(MouseEvent{Kind: MouseMove, X: x, Y: x})
	}
	s.InjectMouse(MouseEvent{Kind: MouseUp, X: 30, Y: 30})
	if s.PaintCount() != painted {
		t.Errorf("transparent sweep painted %d times", s.PaintCount()-painted)
	}
}

func TestCursorSavesAndRestores(t *testing.T) {
	s := NewScreen(20, 20, nil)
	s.Fill(R(0, 0, 20, 20), 3)
	c := NewCursor()
	c.AttachScreen(s)
	c.Show()
	if s.PixelAt(0, 0) != 254 {
		t.Error("cursor not painted")
	}
	c.MoveTo(10, 10)
	if s.PixelAt(0, 0) != 3 {
		t.Error("old position not restored")
	}
	if s.PixelAt(11, 11) != 254 {
		t.Error("cursor not at new position")
	}
	c.Hide()
	if s.PixelAt(11, 11) != 3 {
		t.Error("hide did not restore")
	}
	if c.Pos() != (Point{X: 10, Y: 10}) {
		t.Errorf("pos = %v", c.Pos())
	}
}

func TestButtonClicks(t *testing.T) {
	s := NewScreen(50, 50, nil)
	base := NewBaseWindow(s)
	b := NewButton()
	b.Attach(base, R(10, 10, 10, 10))
	var clicks []int64
	b.OnClick(func(n int64) { clicks = append(clicks, n) })

	press := func(x, y int16) {
		s.InjectMouse(MouseEvent{Kind: MouseDown, X: x, Y: y})
		s.InjectMouse(MouseEvent{Kind: MouseUp, X: x, Y: y})
	}
	press(15, 15)
	press(15, 15)
	if len(clicks) != 2 || clicks[1] != 2 || b.Clicks() != 2 {
		t.Errorf("clicks = %v", clicks)
	}
	// Press inside, release outside: no click.
	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 15, Y: 15})
	s.InjectMouse(MouseEvent{Kind: MouseUp, X: 40, Y: 40})
	if b.Clicks() != 2 {
		t.Error("drag-off counted as click")
	}
	// Click entirely outside: nothing.
	press(40, 40)
	if b.Clicks() != 2 {
		t.Error("outside click counted")
	}
}

func TestMenuSelection(t *testing.T) {
	s := NewScreen(100, 100, nil)
	base := NewBaseWindow(s)
	m := NewMenu()
	m.AttachWindow(base)
	m.AddItem("open")
	m.AddItem("close")
	m.AddItem("quit")
	if m.Items() != 3 {
		t.Fatal("items")
	}
	var idx int64 = -1
	var label string
	m.OnSelect(func(i int64, l string) { idx, label = i, l })
	m.Show(10, 10)
	// Row height 10: row 1 is y in [20, 30).
	s.InjectMouse(MouseEvent{Kind: MouseUp, X: 15, Y: 25})
	if idx != 1 || label != "close" {
		t.Errorf("selected %d %q", idx, label)
	}
	// Menu hidden after selection; further clicks select nothing.
	idx = -1
	s.InjectMouse(MouseEvent{Kind: MouseUp, X: 15, Y: 25})
	if idx != -1 {
		t.Error("hidden menu selected")
	}
}

func TestLayoutTiles(t *testing.T) {
	s := NewScreen(100, 100, nil)
	base := NewBaseWindow(s)
	for i := 0; i < 4; i++ {
		base.Create(R(0, 0, 5, 5), int64(i+1))
	}
	l := NewLayout()
	l.SetColumns(2)
	l.Tile(base)
	// All four children resized and placed without overlap.
	var rects []Rect
	base.mu.Lock()
	for _, c := range base.children {
		rects = append(rects, c.rect)
	}
	base.mu.Unlock()
	for i, a := range rects {
		if a.W <= 5 || a.H <= 5 {
			t.Errorf("child %d not resized: %v", i, a)
		}
		for j, b := range rects {
			if i != j && a.Overlaps(b) {
				t.Errorf("children overlap: %v %v", a, b)
			}
		}
	}
}

func TestRegisterClasses(t *testing.T) {
	lib := dynload.NewLibrary()
	if err := Register(lib, DefaultConfig); err != nil {
		t.Fatal(err)
	}
	names := lib.Names()
	want := []string{"button", "console", "cursor", "deco", "focus", "label", "layout", "menu", "screen", "sweep", "window"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	// Sweep has two registered versions.
	if c, err := lib.Lookup("sweep", 0); err != nil || c.Version != 2 {
		t.Errorf("sweep lookup: %+v, %v", c, err)
	}
	if _, err := lib.LookupExact("sweep", 1); err != nil {
		t.Errorf("sweep v1 missing: %v", err)
	}
	if err := Register(lib, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

type testEnv struct {
	sched *task.Sched
	named map[string]any
}

func (e *testEnv) Sched() *task.Sched { return e.sched }

func (e *testEnv) Named(name string) (any, bool) {
	obj, ok := e.named[name]
	return obj, ok
}

func TestClassConstructorsUseEnv(t *testing.T) {
	lib := dynload.NewLibrary()
	MustRegister(lib, Config{Width: 64, Height: 48})
	ld := dynload.NewLoader(lib)

	scrClass, err := ld.Load("screen", 0)
	if err != nil {
		t.Fatal(err)
	}
	env := &testEnv{named: map[string]any{}}
	obj, err := scrClass.New(env)
	if err != nil {
		t.Fatal(err)
	}
	scr := obj.(*Screen)
	if scr.Width() != 64 {
		t.Errorf("width %d", scr.Width())
	}
	env.named["screen"] = scr

	winClass, err := ld.Load("window", 0)
	if err != nil {
		t.Fatal(err)
	}
	wobj, err := winClass.New(env)
	if err != nil {
		t.Fatal(err)
	}
	if wobj.(*Window).Bounds() != R(0, 0, 64, 48) {
		t.Errorf("base window %v", wobj.(*Window).Bounds())
	}

	// Window without a screen fails cleanly.
	if _, err := winClass.New(&testEnv{named: map[string]any{}}); err == nil {
		t.Error("window construction without screen succeeded")
	}

	// Sweep v2 defaults: grid and transparency set.
	swClass, err := ld.LoadExact("sweep", 2)
	if err != nil {
		t.Fatal(err)
	}
	sobj, err := swClass.New(env)
	if err != nil {
		t.Fatal(err)
	}
	sw := sobj.(*SweepV2)
	if sw.grid != 8 || !sw.transparent {
		t.Errorf("v2 defaults: grid=%d transparent=%v", sw.grid, sw.transparent)
	}
}
