package wm

import (
	"testing"

	"clam/internal/dynload"
)

func focusFixture(t *testing.T) (*Screen, *Window, *Focus) {
	t.Helper()
	s := NewScreen(100, 100, nil)
	base := NewBaseWindow(s)
	f := NewFocus()
	f.Attach(s, base)
	return s, base, f
}

func TestFocusDefaultsToBase(t *testing.T) {
	s, base, f := focusFixture(t)
	if f.Focused() != base {
		t.Fatal("initial focus not on base")
	}
	var got []KeyEvent
	base.PostKey(func(ev KeyEvent) { got = append(got, ev) })
	s.InjectKey(KeyEvent{Code: 13, Down: true})
	if len(got) != 1 || got[0].Code != 13 {
		t.Errorf("base key delivery: %v", got)
	}
}

func TestSetFocusRoutesKeys(t *testing.T) {
	s, base, f := focusFixture(t)
	w1 := base.Create(R(10, 10, 20, 20), 1)
	w2 := base.Create(R(40, 40, 20, 20), 2)
	var k1, k2 int
	w1.PostKey(func(KeyEvent) { k1++ })
	w2.PostKey(func(KeyEvent) { k2++ })

	f.SetFocus(w1)
	s.InjectKey(KeyEvent{Code: 65, Down: true})
	f.SetFocus(w2)
	s.InjectKey(KeyEvent{Code: 66, Down: true})
	s.InjectKey(KeyEvent{Code: 66, Down: false})
	if k1 != 1 || k2 != 2 {
		t.Errorf("k1=%d k2=%d", k1, k2)
	}
	if f.Moves() != 2 {
		t.Errorf("moves = %d", f.Moves())
	}
}

func TestSetFocusNilFocusesBase(t *testing.T) {
	_, base, f := focusFixture(t)
	w := base.Create(R(0, 0, 5, 5), 1)
	f.SetFocus(w)
	f.SetFocus(nil)
	if f.Focused() != base {
		t.Error("nil focus did not return to base")
	}
}

func TestClickToFocus(t *testing.T) {
	s, base, f := focusFixture(t)
	w := base.Create(R(10, 10, 20, 20), 1)
	f.SetClickToFocus(true)

	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 15, Y: 15})
	if f.Focused() != w {
		t.Fatal("click inside child did not focus it")
	}
	// Click on empty base refocuses the base.
	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 90, Y: 90})
	if f.Focused() != base {
		t.Error("click on base did not refocus base")
	}
	// Moves and ups do not change focus.
	f.SetFocus(w)
	s.InjectMouse(MouseEvent{Kind: MouseMove, X: 90, Y: 90})
	s.InjectMouse(MouseEvent{Kind: MouseUp, X: 90, Y: 90})
	if f.Focused() != w {
		t.Error("non-press event moved focus")
	}
}

func TestClickToFocusDisabledByDefault(t *testing.T) {
	s, base, f := focusFixture(t)
	base.Create(R(10, 10, 20, 20), 1)
	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 15, Y: 15})
	if f.Focused() != base {
		t.Error("click moved focus despite click-to-focus off")
	}
}

func TestFocusChangeUpcalls(t *testing.T) {
	_, base, f := focusFixture(t)
	w := base.Create(R(0, 0, 5, 5), 1)
	calls := 0
	f.OnChange(func() { calls++ })
	f.SetFocus(w)
	f.SetFocus(w) // no change: no upcall
	f.SetFocus(base)
	if calls != 2 {
		t.Errorf("change upcalls = %d, want 2", calls)
	}
}

func TestFocusClassRegistered(t *testing.T) {
	lib := dynload.NewLibrary()
	MustRegister(lib, DefaultConfig)
	if _, err := lib.Lookup("focus", 0); err != nil {
		t.Errorf("focus class missing: %v", err)
	}
}
