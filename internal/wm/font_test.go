package wm

import (
	"testing"
	"testing/quick"
)

func TestGlyphLookup(t *testing.T) {
	if _, known := Glyph('A'); !known {
		t.Error("A unknown")
	}
	if _, known := Glyph('a'); !known {
		t.Error("lowercase not folded")
	}
	up, _ := Glyph('A')
	low, _ := Glyph('a')
	if up != low {
		t.Error("folded glyph differs")
	}
	if _, known := Glyph('§'); known {
		t.Error("exotic rune claimed known")
	}
	box, _ := Glyph('§')
	if box != boxGlyph {
		t.Error("unknown rune did not box")
	}
}

func TestGlyphShapesAreDistinct(t *testing.T) {
	// Sanity on the font data: no two letters/digits share a bitmap.
	seen := make(map[[GlyphHeight]uint8]rune)
	for _, r := range "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789" {
		g, known := Glyph(r)
		if !known {
			t.Fatalf("%c missing from font", r)
		}
		if prev, dup := seen[g]; dup {
			t.Errorf("%c and %c share a glyph", prev, r)
		}
		seen[g] = r
	}
}

func TestGlyphsFitFiveColumns(t *testing.T) {
	for r, g := range font5x7 {
		for i, row := range g {
			if row >= 1<<GlyphWidth {
				t.Errorf("%q row %d overflows five columns: %b", r, i, row)
			}
		}
	}
}

func TestTextWidth(t *testing.T) {
	if TextWidth("") != 0 {
		t.Error("empty width")
	}
	if TextWidth("A") != GlyphWidth {
		t.Errorf("single char width %d", TextWidth("A"))
	}
	if TextWidth("AB") != 2*GlyphAdvance-1 {
		t.Errorf("two char width %d", TextWidth("AB"))
	}
}

func TestDrawTextPixels(t *testing.T) {
	s := NewScreen(60, 20, nil)
	w := s.DrawText(2, 2, "HI", 9)
	if w != 2*GlyphAdvance {
		t.Errorf("advance %d", w)
	}
	// 'H' = 13 lit pixels, 'I' = 11 in this font.
	want := int64(0)
	for _, r := range "HI" {
		g, _ := Glyph(r)
		for _, row := range g {
			for b := 0; b < GlyphWidth; b++ {
				if row&(1<<b) != 0 {
					want++
				}
			}
		}
	}
	if got := s.CountColor(9); got != want {
		t.Errorf("lit %d pixels, want %d", got, want)
	}
	// The 'H' left column spans (2,2)..(2,8); below it is background.
	if s.PixelAt(2, 2) != 9 || s.PixelAt(2, 8) != 9 || s.PixelAt(2, 9) != 0 {
		t.Error("glyph misplaced")
	}
}

func TestDrawTextClips(t *testing.T) {
	s := NewScreen(8, 8, nil)
	s.DrawText(5, 5, "WWW", 7) // mostly off-screen: must not panic
	if s.CountColor(7) == 0 {
		t.Error("nothing drawn at all")
	}
}

func TestLabelLifecycle(t *testing.T) {
	s := NewScreen(100, 40, nil)
	base := NewBaseWindow(s)
	l := NewLabel()
	l.Attach(base, 4, 4)
	l.SetText("OK")
	if l.Text() != "OK" {
		t.Errorf("text %q", l.Text())
	}
	if s.CountColor(255) == 0 {
		t.Fatal("label not painted")
	}
	b := l.Bounds()
	if b.W != TextWidth("OK") || b.H != GlyphHeight {
		t.Errorf("bounds %v", b)
	}
	// Changing text erases the old rendering.
	l.SetText("NO")
	lit := s.CountColor(255)
	g1, _ := Glyph('N')
	g2, _ := Glyph('O')
	want := int64(0)
	for _, g := range [][GlyphHeight]uint8{g1, g2} {
		for _, row := range g {
			for b := 0; b < GlyphWidth; b++ {
				if row&(1<<b) != 0 {
					want++
				}
			}
		}
	}
	if lit != want {
		t.Errorf("after SetText: %d pixels lit, want %d", lit, want)
	}
}

func TestLabelColorChange(t *testing.T) {
	s := NewScreen(100, 40, nil)
	base := NewBaseWindow(s)
	l := NewLabel()
	l.Attach(base, 0, 0)
	l.SetText("X")
	l.SetColor(5)
	if s.CountColor(5) == 0 {
		t.Error("recolor not painted")
	}
}

// Property: width is monotone in length and every draw stays within the
// computed bounds.
func TestQuickTextWidthMonotone(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 40 {
			s = s[:40]
		}
		return TextWidth(s+"A") > TextWidth(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFoldUpperHelper(t *testing.T) {
	if foldUpper("abc") != "ABC" {
		t.Error("foldUpper broken")
	}
}
