package wm

import "testing"

func TestDestroyExposesCoveredSibling(t *testing.T) {
	s := NewScreen(100, 100, nil)
	base := NewBaseWindow(s)
	under := base.Create(R(10, 10, 30, 30), 4)
	over := base.Create(R(20, 20, 30, 30), 5) // covers part of under

	// The overlap is painted with the top window's color.
	if s.PixelAt(25, 25) != 5 {
		t.Fatal("top window not painted")
	}
	over.Destroy()
	// The exposed overlap repaints with the underlying window's color.
	if s.PixelAt(25, 25) != 4 {
		t.Errorf("exposed pixel = %d, want 4", s.PixelAt(25, 25))
	}
	// Area outside under but inside the vacated rect returns to base.
	if s.PixelAt(45, 45) != 0 {
		t.Errorf("vacated pixel = %d, want base 0", s.PixelAt(45, 45))
	}
	_ = under
}

func TestMoveExposesCoveredSibling(t *testing.T) {
	s := NewScreen(100, 100, nil)
	base := NewBaseWindow(s)
	under := base.Create(R(10, 10, 30, 30), 4)
	over := base.Create(R(20, 20, 30, 30), 5)
	over.MoveTo(60, 60)
	if s.PixelAt(25, 25) != 4 {
		t.Errorf("exposed pixel = %d, want 4", s.PixelAt(25, 25))
	}
	if s.PixelAt(65, 65) != 5 {
		t.Error("moved window not painted at destination")
	}
	_ = under
}

func TestResizeExposes(t *testing.T) {
	s := NewScreen(100, 100, nil)
	base := NewBaseWindow(s)
	under := base.Create(R(10, 10, 40, 40), 4)
	over := base.Create(R(10, 10, 40, 40), 5)
	over.Resize(10, 10)
	// The shrunk-away area shows the underlying window again.
	if s.PixelAt(35, 35) != 4 {
		t.Errorf("exposed pixel = %d, want 4", s.PixelAt(35, 35))
	}
	if s.PixelAt(12, 12) != 5 {
		t.Error("resized window missing at kept corner")
	}
	_ = under
}

func TestRefreshRepaintsSubtree(t *testing.T) {
	s := NewScreen(100, 100, nil)
	base := NewBaseWindow(s)
	w := base.Create(R(10, 10, 50, 50), 4)
	inner := w.Create(R(5, 5, 10, 10), 6)
	// Scribble over everything, then refresh the subtree.
	s.Fill(R(0, 0, 100, 100), 9)
	w.Refresh()
	if s.PixelAt(12, 12) != 4 && s.PixelAt(30, 30) != 4 {
		t.Error("window background not restored")
	}
	if s.PixelAt(16, 16) != 6 {
		t.Error("child not restored on top")
	}
	// Outside the subtree the scribble remains.
	if s.PixelAt(90, 90) != 9 {
		t.Error("refresh painted outside the subtree")
	}
	_ = inner
}

func TestRefreshSkipsHiddenWindows(t *testing.T) {
	s := NewScreen(50, 50, nil)
	base := NewBaseWindow(s)
	w := base.Create(R(10, 10, 10, 10), 4)
	w.SetVisible(false)
	s.Fill(R(0, 0, 50, 50), 9)
	w.Refresh()
	if s.PixelAt(15, 15) != 9 {
		t.Error("hidden window painted on refresh")
	}
}

func TestExposePreservesZOrder(t *testing.T) {
	s := NewScreen(100, 100, nil)
	base := NewBaseWindow(s)
	a := base.Create(R(10, 10, 30, 30), 3)
	b := base.Create(R(20, 20, 30, 30), 4) // above a
	c := base.Create(R(5, 5, 50, 50), 5)   // above both
	c.Destroy()
	// After exposing, b must still be over a in their overlap.
	if s.PixelAt(25, 25) != 4 {
		t.Errorf("overlap pixel = %d, want 4 (z-order lost)", s.PixelAt(25, 25))
	}
	if s.PixelAt(12, 12) != 3 {
		t.Errorf("a's own area = %d, want 3", s.PixelAt(12, 12))
	}
	_, _ = a, b
}
