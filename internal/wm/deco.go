package wm

import (
	"sync"
)

// Deco is the window-decoration layer: it frames a window with a title
// bar, makes the bar draggable to move the window, and adds a close box
// that destroys it. Like the sweeping layer, it is pure policy stacked on
// the window abstraction with upcall registrations — exactly the kind of
// code the paper wants dynamically loaded so "clients can decide the
// details" (§2.1).
type Deco struct {
	mu    sync.Mutex
	win   *Window // the decorated (content) window
	title string

	barColor   int64
	textColor  int64
	closeColor int64

	dragging bool
	lastPos  Point // last drag position in parent coordinates

	closed []func(string)
	moved  uint64
}

// barHeight is the title-bar height in pixels.
const barHeight = GlyphHeight + 4

// NewDeco returns an unattached decoration layer.
func NewDeco() *Deco {
	return &Deco{barColor: 60, textColor: 255, closeColor: 160}
}

// Attach decorates w: the bar is drawn along the window's top edge and
// the layer registers for the window's mouse events. The content area
// effectively starts below the bar.
func (d *Deco) Attach(w *Window, title string) {
	d.mu.Lock()
	d.win = w
	d.title = title
	d.mu.Unlock()
	w.PostMouse(d.Mouse)
	d.paint()
}

// SetTitle replaces the title text and repaints the bar.
func (d *Deco) SetTitle(title string) {
	d.mu.Lock()
	d.title = title
	d.mu.Unlock()
	d.paint()
}

// Title returns the current title.
func (d *Deco) Title() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.title
}

// OnClosed registers a procedure upcalled (with the title) when the close
// box is clicked, after the window is destroyed.
func (d *Deco) OnClosed(fn func(string)) {
	if fn == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = append(d.closed, fn)
}

// Moves reports how many drag steps the layer has applied.
func (d *Deco) Moves() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(d.moved)
}

// barRect returns the title-bar rectangle in window coordinates; d.mu
// held.
func (d *Deco) barRectLocked() Rect {
	b := d.win.Bounds()
	return Rect{X: 0, Y: 0, W: b.W, H: barHeight}
}

// closeRect returns the close box in window coordinates; d.mu held.
func (d *Deco) closeRectLocked() Rect {
	b := d.win.Bounds()
	return Rect{X: b.W - barHeight, Y: 0, W: barHeight, H: barHeight}
}

func (d *Deco) paint() {
	d.mu.Lock()
	win := d.win
	if win == nil {
		d.mu.Unlock()
		return
	}
	bar := d.barRectLocked()
	box := d.closeRectLocked()
	title := d.title
	barColor, textColor, closeColor := d.barColor, d.textColor, d.closeColor
	d.mu.Unlock()

	win.FillRect(bar, barColor)
	win.FillRect(box.Inset(2), closeColor)
	dx, dy := win.screenOffset()
	win.scr.DrawText(dx+3, dy+2, title, textColor)
}

// Mouse is the decoration layer's upcall procedure.
func (d *Deco) Mouse(ev MouseEvent) {
	d.mu.Lock()
	win := d.win
	if win == nil {
		d.mu.Unlock()
		return
	}
	bar := d.barRectLocked()
	box := d.closeRectLocked()

	switch ev.Kind {
	case MouseDown:
		if ev.Pos().In(box) {
			// Close: destroy the window and upcall the observers.
			title := d.title
			fns := append(([]func(string))(nil), d.closed...)
			d.win = nil
			d.mu.Unlock()
			win.Destroy()
			for _, fn := range fns {
				fn(title)
			}
			return
		}
		if ev.Pos().In(bar) {
			d.dragging = true
			b := win.Bounds()
			// Remember where the press landed in parent coordinates.
			d.lastPos = Point{X: b.X + ev.X, Y: b.Y + ev.Y}
		}
		d.mu.Unlock()
	case MouseMove:
		if !d.dragging {
			d.mu.Unlock()
			return
		}
		b := win.Bounds()
		cur := Point{X: b.X + ev.X, Y: b.Y + ev.Y}
		dx := cur.X - d.lastPos.X
		dy := cur.Y - d.lastPos.Y
		d.lastPos = cur
		d.moved++
		d.mu.Unlock()
		if dx != 0 || dy != 0 {
			win.MoveTo(int64(b.X+dx), int64(b.Y+dy))
			d.paint()
		}
	case MouseUp:
		d.dragging = false
		d.mu.Unlock()
	default:
		d.mu.Unlock()
	}
}
