package wm

import (
	"sync"
)

// Focus is the keyboard-focus layer: it registers with the screen for key
// events and forwards them to whichever window currently holds the focus,
// with click-to-focus as an option. This is the tenth main class of the
// window library, completing the input story: mouse events route by
// position (Window.Mouse), key events route by focus.
type Focus struct {
	mu      sync.Mutex
	scr     *Screen
	base    *Window
	focused *Window
	clickTo bool
	// observers learn about focus changes — e.g. a decoration layer
	// repainting title bars, or a client tracking the active window.
	changed []func()
	moves   uint64
}

// NewFocus returns an unattached focus manager.
func NewFocus() *Focus {
	return &Focus{}
}

// Attach wires the manager to the screen's key events and, for
// click-to-focus, to the base window's mouse events.
func (f *Focus) Attach(scr *Screen, base *Window) {
	f.mu.Lock()
	f.scr = scr
	f.base = base
	f.focused = base
	f.mu.Unlock()
	scr.PostKey(f.Key)
	scr.PostInput(f.mouse)
}

// SetClickToFocus enables focus-follows-click: a button press inside a
// child of the base window focuses it.
func (f *Focus) SetClickToFocus(v bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.clickTo = v
}

// SetFocus makes w the key-event target. A nil w focuses the base window.
func (f *Focus) SetFocus(w *Window) {
	f.mu.Lock()
	if w == nil {
		w = f.base
	}
	changedNow := w != f.focused
	f.focused = w
	if changedNow {
		f.moves++
	}
	obs := append(([]func())(nil), f.changed...)
	f.mu.Unlock()
	if changedNow {
		for _, fn := range obs {
			fn()
		}
	}
}

// Focused returns the window currently holding the focus.
func (f *Focus) Focused() *Window {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.focused
}

// OnChange registers a procedure upcalled whenever the focus moves.
func (f *Focus) OnChange(fn func()) {
	if fn == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.changed = append(f.changed, fn)
}

// Moves reports how many times the focus has changed.
func (f *Focus) Moves() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(f.moves)
}

// Key is the manager's upcall procedure for the screen's key events: it
// forwards to the focused window's registered key procedures. The base
// window is skipped because NewBaseWindow already registered it with the
// screen directly; forwarding again would deliver every event twice.
func (f *Focus) Key(ev KeyEvent) {
	f.mu.Lock()
	w := f.focused
	base := f.base
	f.mu.Unlock()
	if w == nil || w == base {
		return
	}
	w.Key(ev)
}

// mouse implements click-to-focus.
func (f *Focus) mouse(ev MouseEvent) {
	if ev.Kind != MouseDown {
		return
	}
	f.mu.Lock()
	enabled := f.clickTo
	base := f.base
	f.mu.Unlock()
	if !enabled || base == nil {
		return
	}
	if child := base.ChildAt(ev.Pos()); child != nil {
		f.SetFocus(child)
	} else {
		f.SetFocus(base)
	}
}
