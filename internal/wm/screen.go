package wm

import (
	"fmt"
	"sync"

	"clam/internal/task"
)

// Screen is the lowest layer of the window system: an in-memory
// framebuffer with damage tracking and the input entry points. It plays
// the role of the paper's screen class: "Screen is a low level class that
// handles updates to the display screen" (§4.2), and it is where input
// becomes asynchronous: "A new task is started in the server in response
// to input from the external devices, such as the keyboard and mouse.
// This task propagates the information from the input event upward
// through layers of abstraction by using upcalls" (§4.3).
//
// The display is simulated: a W×H byte array of color indices standing in
// for the MicroVAX's bitmapped display. Everything the paper's
// measurements exercise — drawing through layers, damage, event fan-out —
// hits this code path.
type Screen struct {
	mu     sync.Mutex
	w, h   int16
	pix    []byte
	damage Region

	mouseFns  []func(MouseEvent)
	keyFns    []func(KeyEvent)
	damageFns []func([]Rect)

	sched *task.Sched // nil delivers input inline

	// Input events are delivered strictly in arrival order by a single
	// pump task (reused across bursts, §4.4: "Tasks are reused, instead
	// of being newly created on each input event to reduce overhead").
	inq     []inputEvent
	pumping bool

	// counters for experiments
	injected uint64
	painted  uint64
}

type inputEvent struct {
	mouse *MouseEvent
	key   *KeyEvent
	// Delivery notification: doneEv for task waiters (token-safe), done
	// for plain goroutines. At most one is set.
	done   chan struct{}
	doneEv *task.Event
}

// complete signals whoever is waiting for this event's delivery.
func (ie *inputEvent) complete() {
	if ie.done != nil {
		close(ie.done)
	}
	if ie.doneEv != nil {
		ie.doneEv.Signal()
	}
}

// NewScreen creates a screen of the given size. If sched is non-nil,
// injected input events each start a task that carries the event upward.
func NewScreen(w, h int16, sched *task.Sched) *Screen {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("wm: invalid screen size %dx%d", w, h))
	}
	return &Screen{
		w:     w,
		h:     h,
		pix:   make([]byte, int(w)*int(h)),
		sched: sched,
	}
}

// Width reports the screen width in pixels.
func (s *Screen) Width() int64 { return int64(s.w) }

// Height reports the screen height in pixels.
func (s *Screen) Height() int64 { return int64(s.h) }

// Bounds returns the full screen rectangle.
func (s *Screen) Bounds() Rect { return Rect{W: s.w, H: s.h} }

// Fill paints the clipped rectangle with a color.
func (s *Screen) Fill(r Rect, color int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fillLocked(r, byte(color))
}

func (s *Screen) fillLocked(r Rect, color byte) {
	r = r.Intersect(s.Bounds())
	if r.Empty() {
		return
	}
	for y := r.Y; y < r.Y+r.H; y++ {
		row := s.pix[int(y)*int(s.w):]
		for x := r.X; x < r.X+r.W; x++ {
			row[x] = color
		}
	}
	s.damage.Add(r)
	s.painted++
}

// Border paints a 1-pixel frame along the rectangle's edge.
func (s *Screen) Border(r Rect, color int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := byte(color)
	s.fillLocked(Rect{X: r.X, Y: r.Y, W: r.W, H: 1}, c)
	s.fillLocked(Rect{X: r.X, Y: r.Y + r.H - 1, W: r.W, H: 1}, c)
	s.fillLocked(Rect{X: r.X, Y: r.Y, W: 1, H: r.H}, c)
	s.fillLocked(Rect{X: r.X + r.W - 1, Y: r.Y, W: 1, H: r.H}, c)
}

// PixelAt reads one pixel (out-of-range reads return -1).
func (s *Screen) PixelAt(x, y int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if x < 0 || y < 0 || x >= int64(s.w) || y >= int64(s.h) {
		return -1
	}
	return int64(s.pix[y*int64(s.w)+x])
}

// CountColor returns how many pixels currently hold the color — a cheap
// way for tests and remote clients to verify drawing without shipping the
// framebuffer.
func (s *Screen) CountColor(color int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	c := byte(color)
	for _, p := range s.pix {
		if p == c {
			n++
		}
	}
	return n
}

// Snapshot copies the framebuffer (row-major, w*h bytes).
func (s *Screen) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.pix...)
}

// TakeDamage returns the accumulated damage rectangles and resets them —
// what a display driver would repaint.
func (s *Screen) TakeDamage() []Rect {
	s.mu.Lock()
	defer s.mu.Unlock()
	rects := s.damage.Rects()
	s.damage.Clear()
	return rects
}

// OnDamage registers a procedure to receive batches of damage rectangles
// — how a remote display client mirrors the framebuffer incrementally.
// Damage accumulates (coalesced into disjoint rectangles) until
// FlushDamage posts it, so a burst of drawing costs one upcall.
func (s *Screen) OnDamage(fn func([]Rect)) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.damageFns = append(s.damageFns, fn)
}

// FlushDamage delivers the accumulated damage to every registered
// observer and resets it, returning how many rectangles were posted.
// With no observers the damage is left in place for TakeDamage.
func (s *Screen) FlushDamage() int64 {
	s.mu.Lock()
	if len(s.damageFns) == 0 || s.damage.Empty() {
		s.mu.Unlock()
		return 0
	}
	rects := s.damage.Rects()
	s.damage.Clear()
	fns := append(([]func([]Rect))(nil), s.damageFns...)
	s.mu.Unlock()
	for _, fn := range fns {
		fn(rects)
	}
	return int64(len(rects))
}

// ReadRect copies the pixels of a clipped rectangle (row-major within the
// rectangle) — the fetch half of incremental display mirroring.
func (s *Screen) ReadRect(r Rect) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	r = r.Intersect(s.Bounds())
	if r.Empty() {
		return nil
	}
	out := make([]byte, 0, r.Area())
	for y := r.Y; y < r.Y+r.H; y++ {
		row := s.pix[int(y)*int(s.w):]
		out = append(out, row[r.X:r.X+r.W]...)
	}
	return out
}

// PostInput registers a procedure to receive mouse events — the paper's
// S.postinput: "the window class registers the window::mouse procedure
// with S (by calling S.postinput) to handle all mouse button events.
// S.postinput saves the pointer to BaseW and window::mouse in S's state"
// (§4.2). The procedure may be local or a RUC proxy; the screen cannot
// tell.
func (s *Screen) PostInput(fn func(MouseEvent)) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mouseFns = append(s.mouseFns, fn)
}

// PostKey registers a procedure for keyboard events.
func (s *Screen) PostKey(fn func(KeyEvent)) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keyFns = append(s.keyFns, fn)
}

// InjectMouse is the external-device entry point: "the screen::mouse
// procedure sees the event and, using the previous registration, makes an
// upcall" (§4.2). With a scheduler, the event is queued and a (reused)
// input task delivers events strictly in arrival order; without one,
// delivery is inline.
func (s *Screen) InjectMouse(ev MouseEvent) {
	s.enqueue(inputEvent{mouse: &ev})
}

// InjectMouseWait is InjectMouse but returns only after delivery has
// completed — used by tests, benchmarks and remote device drivers that
// need a completion edge. When called from a task (e.g. as a remote
// method running in a dispatcher task), it blocks through the scheduler so
// the input pump can run.
func (s *Screen) InjectMouseWait(ev MouseEvent) {
	ie := inputEvent{mouse: &ev}
	if cur := task.Current(); cur != nil {
		ie.doneEv = &task.Event{}
		s.enqueue(ie)
		cur.Block(ie.doneEv)
		return
	}
	ie.done = make(chan struct{})
	s.enqueue(ie)
	<-ie.done
}

// InjectKey delivers a keyboard event through the registered procedures.
func (s *Screen) InjectKey(ev KeyEvent) {
	s.enqueue(inputEvent{key: &ev})
}

// enqueue adds an input event, delivering inline when there is no
// scheduler. It reports whether a done channel (if any) will be closed.
func (s *Screen) enqueue(ie inputEvent) bool {
	s.mu.Lock()
	s.injected++
	if s.sched == nil {
		s.mu.Unlock()
		s.deliver(ie)
		ie.complete()
		return true
	}
	s.inq = append(s.inq, ie)
	spawn := !s.pumping
	if spawn {
		s.pumping = true
	}
	s.mu.Unlock()
	if spawn {
		if err := s.sched.Spawn(func(*task.Task) { s.pump() }); err != nil {
			// Scheduler closed: fall back to inline delivery of the
			// whole queue.
			s.mu.Lock()
			s.pumping = false
			q := s.inq
			s.inq = nil
			s.mu.Unlock()
			for _, e := range q {
				s.deliver(e)
				e.complete()
			}
		}
	}
	return true
}

// pump drains the input queue in order; it runs as a task and exits when
// the queue empties, returning the task to the pool for reuse.
func (s *Screen) pump() {
	for {
		s.mu.Lock()
		if len(s.inq) == 0 {
			s.pumping = false
			s.mu.Unlock()
			return
		}
		ie := s.inq[0]
		s.inq = s.inq[1:]
		s.mu.Unlock()
		s.deliver(ie)
		ie.complete()
	}
}

// deliver upcalls the registered procedures for one event.
func (s *Screen) deliver(ie inputEvent) {
	s.mu.Lock()
	var mfns []func(MouseEvent)
	var kfns []func(KeyEvent)
	if ie.mouse != nil {
		mfns = append(([]func(MouseEvent))(nil), s.mouseFns...)
	}
	if ie.key != nil {
		kfns = append(([]func(KeyEvent))(nil), s.keyFns...)
	}
	s.mu.Unlock()
	if ie.mouse != nil {
		for _, fn := range mfns {
			fn(*ie.mouse)
		}
	}
	if ie.key != nil {
		for _, fn := range kfns {
			fn(*ie.key)
		}
	}
}

// InputCount reports how many events have been injected.
func (s *Screen) InputCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.injected)
}

// PaintCount reports how many fill operations have run.
func (s *Screen) PaintCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.painted)
}
