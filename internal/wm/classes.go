package wm

import (
	"errors"
	"fmt"
	"reflect"

	"clam/internal/dynload"
	"clam/internal/task"
)

// This file packages the window-management classes as dynamically loadable
// modules (§2): the library is the set of object files a CLAM server could
// load; nothing here links into the server until a Load request arrives.

// Config sizes the simulated display.
type Config struct {
	Width, Height int16
}

// DefaultConfig matches a small workstation display.
var DefaultConfig = Config{Width: 640, Height: 480}

// The environment interfaces a module constructor probes for. core.Env
// satisfies both; tests may supply anything equivalent.
type schedEnv interface{ Sched() *task.Sched }
type namedEnv interface{ Named(string) (any, bool) }

func envSched(env any) *task.Sched {
	if se, ok := env.(schedEnv); ok {
		return se.Sched()
	}
	return nil
}

func envNamed(env any, name string) (any, bool) {
	if ne, ok := env.(namedEnv); ok {
		return ne.Named(name)
	}
	return nil, false
}

// errNoScreen reports a window-layer load before a screen exists.
var errNoScreen = errors.New(`wm: no named "screen" instance; create the screen class first`)

// SweepV2 is version 2 of the sweeping class: identical code with
// different creation defaults (grid alignment on, transparent band),
// demonstrating the paper's point that "different clients could have
// different versions, depending on their application". It is a distinct
// Go type so both versions can be loaded at once.
type SweepV2 struct {
	Sweep
}

// Register adds the window-management classes to lib. The screen class
// publishes nothing by itself; a server bootstrap (or the first client)
// typically creates "screen" and "window" instances and publishes them
// under well-known names.
func Register(lib *dynload.Library, cfg Config) error {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return fmt.Errorf("wm: invalid config %+v", cfg)
	}
	classes := []dynload.Class{
		{
			Name: "screen", Version: 1, Type: reflect.TypeOf(&Screen{}),
			New: func(env any) (any, error) {
				return NewScreen(cfg.Width, cfg.Height, envSched(env)), nil
			},
		},
		{
			Name: "window", Version: 1, Type: reflect.TypeOf(&Window{}),
			New: func(env any) (any, error) {
				obj, ok := envNamed(env, "screen")
				if !ok {
					return nil, errNoScreen
				}
				scr, ok := obj.(*Screen)
				if !ok {
					return nil, fmt.Errorf(`wm: named "screen" is a %T`, obj)
				}
				return NewBaseWindow(scr), nil
			},
		},
		{
			Name: "sweep", Version: 1, Type: reflect.TypeOf(&Sweep{}),
			New: func(any) (any, error) { return NewSweep(), nil },
		},
		{
			Name: "sweep", Version: 2, Type: reflect.TypeOf(&SweepV2{}),
			New: func(any) (any, error) {
				s := &SweepV2{}
				s.borderColor = 255
				s.grid = 8
				s.transparent = true
				return s, nil
			},
		},
		{
			Name: "cursor", Version: 1, Type: reflect.TypeOf(&Cursor{}),
			New: func(env any) (any, error) {
				c := NewCursor()
				if obj, ok := envNamed(env, "screen"); ok {
					if scr, ok := obj.(*Screen); ok {
						c.AttachScreen(scr)
					}
				}
				return c, nil
			},
		},
		{
			Name: "button", Version: 1, Type: reflect.TypeOf(&Button{}),
			New: func(any) (any, error) { return NewButton(), nil },
		},
		{
			Name: "menu", Version: 1, Type: reflect.TypeOf(&Menu{}),
			New: func(any) (any, error) { return NewMenu(), nil },
		},
		{
			Name: "layout", Version: 1, Type: reflect.TypeOf(&Layout{}),
			New: func(any) (any, error) { return NewLayout(), nil },
		},
		{
			Name: "label", Version: 1, Type: reflect.TypeOf(&Label{}),
			New: func(any) (any, error) { return NewLabel(), nil },
		},
		{
			Name: "focus", Version: 1, Type: reflect.TypeOf(&Focus{}),
			New: func(any) (any, error) { return NewFocus(), nil },
		},
		{
			Name: "deco", Version: 1, Type: reflect.TypeOf(&Deco{}),
			New: func(any) (any, error) { return NewDeco(), nil },
		},
		{
			Name: "console", Version: 1, Type: reflect.TypeOf(&Console{}),
			New: func(any) (any, error) { return NewConsole(), nil },
		},
	}
	for _, c := range classes {
		if err := lib.Register(c); err != nil {
			return err
		}
	}
	return nil
}

// MustRegister is Register but panics on error.
func MustRegister(lib *dynload.Library, cfg Config) {
	if err := Register(lib, cfg); err != nil {
		panic(err)
	}
}
