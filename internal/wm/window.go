package wm

import (
	"sync"
)

// Window provides "a window abstraction layered over the screen
// abstraction" (§4.2). Windows form a tree rooted at a base window that
// covers the screen; each window clips its drawing to its screen area and
// routes mouse events to the topmost child under the pointer, translating
// coordinates as the event maps upward through the layers.
//
// Registration follows the paper's example exactly: creating the base
// window registers Window.Mouse with the screen (S.postinput); a layer
// above a window registers its own procedure with W.PostMouse. A
// registered procedure may be a local func or a distributed-upcall proxy.
type Window struct {
	mu       sync.Mutex
	scr      *Screen
	parent   *Window
	rect     Rect      // in parent coordinates
	children []*Window // z-order: last is topmost
	bg       byte
	visible  bool
	dead     bool

	mouseFns []func(MouseEvent)
	keyFns   []func(KeyEvent)

	// routed counts events this window processed (delivered or passed to
	// a child); used by the sweep-placement experiment.
	routed uint64
}

// NewBaseWindow creates the root window covering the whole screen and
// registers its Mouse and Key procedures with the screen — "While creating
// BaseW, the window class registers the window::mouse procedure with S".
func NewBaseWindow(scr *Screen) *Window {
	w := &Window{
		scr:     scr,
		rect:    scr.Bounds(),
		bg:      0,
		visible: true,
	}
	scr.PostInput(w.Mouse)
	scr.PostKey(w.Key)
	return w
}

// Create makes a child window at r (parent coordinates) and paints it.
// The returned pointer crosses to remote callers as a handle.
func (w *Window) Create(r Rect, bg int64) *Window {
	child := &Window{
		scr:     w.scr,
		parent:  w,
		rect:    r,
		bg:      byte(bg),
		visible: true,
	}
	w.mu.Lock()
	w.children = append(w.children, child)
	w.mu.Unlock()
	child.Fill(bg)
	return child
}

// Bounds returns the window rectangle in parent coordinates.
func (w *Window) Bounds() Rect {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rect
}

// ScreenRect returns the window rectangle in screen coordinates, clipped
// to every ancestor.
func (w *Window) ScreenRect() Rect {
	w.mu.Lock()
	r := w.rect
	p := w.parent
	w.mu.Unlock()
	for p != nil {
		p.mu.Lock()
		pr := p.rect // parent's rect, in the grandparent's coordinates
		pp := p.parent
		p.mu.Unlock()
		// Lift r into the grandparent's coordinates and clip to the
		// parent's extent there.
		r = r.Translate(pr.X, pr.Y).Intersect(pr)
		p = pp
	}
	return r.Intersect(w.scr.Bounds())
}

// screenOffset returns the translation from this window's coordinates to
// screen coordinates.
func (w *Window) screenOffset() (dx, dy int16) {
	for cur := w; cur != nil; {
		cur.mu.Lock()
		dx += cur.rect.X
		dy += cur.rect.Y
		next := cur.parent
		cur.mu.Unlock()
		cur = next
	}
	return dx, dy
}

// Fill paints the window interior with a color.
func (w *Window) Fill(color int64) {
	dx, dy := w.screenOffset()
	w.mu.Lock()
	r := Rect{X: dx, Y: dy, W: w.rect.W, H: w.rect.H}
	w.mu.Unlock()
	w.scr.Fill(r, color)
}

// FillRect paints a rectangle given in window coordinates.
func (w *Window) FillRect(r Rect, color int64) {
	dx, dy := w.screenOffset()
	w.scr.Fill(r.Translate(dx, dy), color)
}

// Border draws a 1-pixel frame just inside the window edge.
func (w *Window) Border(color int64) {
	dx, dy := w.screenOffset()
	w.mu.Lock()
	r := Rect{X: dx, Y: dy, W: w.rect.W, H: w.rect.H}
	w.mu.Unlock()
	w.scr.Border(r, color)
}

// BorderRect draws a frame for a rectangle in window coordinates.
func (w *Window) BorderRect(r Rect, color int64) {
	dx, dy := w.screenOffset()
	w.scr.Border(r.Translate(dx, dy), color)
}

// MoveTo repositions the window within its parent, repainting the vacated
// area (re-exposing any siblings it covered) and the window at its new
// place.
func (w *Window) MoveTo(x, y int64) {
	w.mu.Lock()
	old := w.rect
	w.rect.X, w.rect.Y = int16(x), int16(y)
	parent := w.parent
	bg := w.bg
	w.mu.Unlock()
	w.exposeSiblings(parent, old)
	w.Fill(int64(bg))
}

// Resize changes the window extent, repainting and re-exposing.
func (w *Window) Resize(width, height int64) {
	w.mu.Lock()
	old := w.rect
	w.rect.W, w.rect.H = int16(width), int16(height)
	parent := w.parent
	bg := w.bg
	w.mu.Unlock()
	w.exposeSiblings(parent, old)
	w.Fill(int64(bg))
}

// Raise moves the window to the top of its siblings' z-order.
func (w *Window) Raise() {
	w.mu.Lock()
	parent := w.parent
	w.mu.Unlock()
	if parent == nil {
		return
	}
	parent.mu.Lock()
	for i, c := range parent.children {
		if c == w {
			parent.children = append(append(parent.children[:i:i], parent.children[i+1:]...), w)
			break
		}
	}
	parent.mu.Unlock()
	w.mu.Lock()
	bg := w.bg
	w.mu.Unlock()
	w.Fill(int64(bg))
}

// Destroy removes the window from its parent, repaints the vacated area
// and re-exposes any siblings it covered.
func (w *Window) Destroy() {
	w.mu.Lock()
	parent := w.parent
	rect := w.rect
	w.dead = true
	w.mu.Unlock()
	if parent == nil {
		return
	}
	parent.mu.Lock()
	for i, c := range parent.children {
		if c == w {
			parent.children = append(parent.children[:i:i], parent.children[i+1:]...)
			break
		}
	}
	parent.mu.Unlock()
	w.exposeSiblings(parent, rect)
}

// Refresh repaints this window's background and then every child, bottom
// of the z-order first — the repaint a window system performs when
// occluded content is exposed. Immediate-mode drawing (fills, labels) is
// not replayed; layers that draw content re-assert it through their own
// upcalls after an exposure.
func (w *Window) Refresh() {
	w.mu.Lock()
	bg := w.bg
	kids := append([]*Window(nil), w.children...)
	visible := w.visible && !w.dead
	w.mu.Unlock()
	if !visible {
		return
	}
	w.Fill(int64(bg))
	for _, c := range kids {
		c.Refresh()
	}
}

// exposeSiblings repaints the parent subtree after this window vacated
// old (parent coordinates): the vacated area returns to the parent
// background and any sibling the window was covering repaints.
func (w *Window) exposeSiblings(parent *Window, old Rect) {
	if parent == nil {
		return
	}
	pdx, pdy := parent.screenOffset()
	parent.mu.Lock()
	pbg := parent.bg
	kids := append([]*Window(nil), parent.children...)
	parent.mu.Unlock()
	w.scr.Fill(old.Translate(pdx, pdy), int64(pbg))
	for _, sib := range kids {
		if sib == w {
			continue
		}
		if sib.Bounds().Overlaps(old) {
			sib.Refresh()
		}
	}
}

// ChildCount reports the number of children.
func (w *Window) ChildCount() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return int64(len(w.children))
}

// ChildAt returns the topmost visible child containing the point (window
// coordinates), or nil.
func (w *Window) ChildAt(p Point) *Window {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := len(w.children) - 1; i >= 0; i-- {
		c := w.children[i]
		c.mu.Lock()
		hit := c.visible && !c.dead && p.In(c.rect)
		c.mu.Unlock()
		if hit {
			return c
		}
	}
	return nil
}

// PostMouse registers a procedure for mouse events on this window — the
// paper's W2.postinput. Procedures receive events in this window's
// coordinate space.
func (w *Window) PostMouse(fn func(MouseEvent)) {
	if fn == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.mouseFns = append(w.mouseFns, fn)
}

// PostKey registers a procedure for key events on this window.
func (w *Window) PostKey(fn func(KeyEvent)) {
	if fn == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.keyFns = append(w.keyFns, fn)
}

// Mouse is the window's upcall procedure, registered with the layer below.
// "This procedure determines if the mouse was inside any other windows
// and, if so, makes upcalls to them as well" (§4.2): the event is
// translated into the child's coordinate space and passed up; otherwise it
// is delivered to the procedures registered on this window. An event that
// nobody wants is discarded — this layer's way of limiting the asynchrony.
func (w *Window) Mouse(ev MouseEvent) {
	w.mu.Lock()
	w.routed++
	w.mu.Unlock()
	if child := w.ChildAt(ev.Pos()); child != nil {
		cr := child.Bounds()
		child.Mouse(ev.Translated(-cr.X, -cr.Y))
		return
	}
	w.mu.Lock()
	fns := append(([]func(MouseEvent))(nil), w.mouseFns...)
	w.mu.Unlock()
	for _, fn := range fns {
		fn(ev)
	}
}

// Key delivers a keyboard event to this window's registered procedures
// (keyboard focus is simply the base window in this library).
func (w *Window) Key(ev KeyEvent) {
	w.mu.Lock()
	fns := append(([]func(KeyEvent))(nil), w.keyFns...)
	w.mu.Unlock()
	for _, fn := range fns {
		fn(ev)
	}
}

// RoutedCount reports how many mouse events this window has routed.
func (w *Window) RoutedCount() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return int64(w.routed)
}

// Background returns the window's background color.
func (w *Window) Background() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return int64(w.bg)
}

// SetVisible shows or hides the window for hit-testing and repaints
// accordingly.
func (w *Window) SetVisible(v bool) {
	w.mu.Lock()
	w.visible = v
	bg := w.bg
	parent := w.parent
	rect := w.rect
	w.mu.Unlock()
	if v {
		w.Fill(int64(bg))
	} else if parent != nil {
		pdx, pdy := parent.screenOffset()
		parent.mu.Lock()
		pbg := parent.bg
		parent.mu.Unlock()
		w.scr.Fill(rect.Translate(pdx, pdy), int64(pbg))
	}
}
