package wm_test

import (
	"testing"

	"clam/internal/core"
	"clam/internal/wm"
)

// Remote display mirroring: damage subscription and rectangle reads over
// the full stack, with the damage handler making reentrant ReadRect calls
// from inside its own upcall.
func TestRemoteDamageMirroring(t *testing.T) {
	_, scr, _, path := bootWMServer(t)
	c, err := core.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	screen, err := c.NamedObject("screen")
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.NamedObject("basewindow")
	if err != nil {
		t.Fatal(err)
	}

	w := int(scr.Width())
	mirror := make([]byte, w*int(scr.Height()))
	if err := screen.Call("OnDamage", func(rects []wm.Rect) {
		for _, r := range rects {
			var pix []byte
			if err := screen.CallInto("ReadRect", []any{&pix}, r); err != nil {
				t.Errorf("reentrant read: %v", err)
				return
			}
			i := 0
			for y := r.Y; y < r.Y+r.H; y++ {
				for x := r.X; x < r.X+r.W; x++ {
					mirror[int(y)*w+int(x)] = pix[i]
					i++
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}

	var win *core.Remote
	if err := base.CallInto("Create", []any{&win}, wm.R(10, 10, 40, 30), int64(6)); err != nil {
		t.Fatal(err)
	}
	if err := win.Async("FillRect", wm.R(5, 5, 10, 10), int64(8)); err != nil {
		t.Fatal(err)
	}
	var posted int64
	if err := screen.CallInto("FlushDamage", []any{&posted}); err != nil {
		t.Fatal(err)
	}
	if posted == 0 {
		t.Fatal("no damage posted")
	}
	truth := scr.Snapshot()
	for i := range truth {
		if mirror[i] != truth[i] {
			t.Fatalf("mirror diverges at pixel %d: %d vs %d", i, mirror[i], truth[i])
		}
	}
}
