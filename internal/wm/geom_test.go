package wm

import (
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := R(10, 20, 30, 40)
	if r.Empty() || r.Area() != 1200 {
		t.Errorf("r = %v area %d", r, r.Area())
	}
	if (Rect{}).Area() != 0 || !(Rect{}).Empty() {
		t.Error("zero rect not empty")
	}
	if R(0, 0, -5, 5).Area() != 0 {
		t.Error("negative extent has area")
	}
	if r.Min() != (Point{X: 10, Y: 20}) || r.Max() != (Point{X: 40, Y: 60}) {
		t.Errorf("min/max: %v %v", r.Min(), r.Max())
	}
	if got := r.String(); got != "[10,20 30x40]" {
		t.Errorf("String() = %q", got)
	}
}

func TestRectCanon(t *testing.T) {
	r := Rect{X: 10, Y: 10, W: -4, H: -6}.Canon()
	if r != R(6, 4, 4, 6) {
		t.Errorf("canon = %v", r)
	}
	if c := R(1, 2, 3, 4).Canon(); c != R(1, 2, 3, 4) {
		t.Errorf("canon of canonical changed: %v", c)
	}
}

func TestRectIntersect(t *testing.T) {
	a, b := R(0, 0, 10, 10), R(5, 5, 10, 10)
	if got := a.Intersect(b); got != R(5, 5, 5, 5) {
		t.Errorf("intersect = %v", got)
	}
	if !a.Overlaps(b) || a.Overlaps(R(20, 20, 5, 5)) {
		t.Error("overlaps wrong")
	}
	if !a.Intersect(R(10, 0, 5, 5)).Empty() {
		t.Error("touching rects intersect")
	}
}

func TestRectUnionContains(t *testing.T) {
	a, b := R(0, 0, 2, 2), R(8, 8, 2, 2)
	u := a.Union(b)
	if u != R(0, 0, 10, 10) {
		t.Errorf("union = %v", u)
	}
	if !u.ContainsRect(a) || !u.ContainsRect(b) {
		t.Error("union does not contain parts")
	}
	if u.ContainsRect(R(9, 9, 5, 5)) {
		t.Error("contains overflow rect")
	}
	if a.Union(Rect{}) != a || (Rect{}).Union(b) != b {
		t.Error("union with empty broken")
	}
}

func TestRectInset(t *testing.T) {
	if got := R(0, 0, 10, 10).Inset(2); got != R(2, 2, 6, 6) {
		t.Errorf("inset = %v", got)
	}
	if got := R(0, 0, 3, 3).Inset(2); !got.Empty() {
		t.Errorf("over-inset = %v, want empty", got)
	}
}

func TestRectSubtract(t *testing.T) {
	a := R(0, 0, 10, 10)
	parts := a.Subtract(R(2, 2, 4, 4))
	total := 0
	for _, p := range parts {
		total += p.Area()
		for _, q := range parts {
			if p != q && p.Overlaps(q) {
				t.Fatalf("overlapping parts %v %v", p, q)
			}
		}
		if p.Overlaps(R(2, 2, 4, 4)) {
			t.Fatalf("part %v overlaps the hole", p)
		}
	}
	if total != 100-16 {
		t.Errorf("remaining area %d, want 84", total)
	}
	if parts := a.Subtract(a); parts != nil {
		t.Errorf("a - a = %v", parts)
	}
	if parts := a.Subtract(R(50, 50, 2, 2)); len(parts) != 1 || parts[0] != a {
		t.Errorf("disjoint subtract = %v", parts)
	}
}

// Property: subtraction partitions the area.
func TestQuickSubtractAreaLaw(t *testing.T) {
	f := func(ax, ay int8, aw, ah uint8, bx, by int8, bw, bh uint8) bool {
		a := R(int16(ax), int16(ay), int16(aw%40), int16(ah%40))
		b := R(int16(bx), int16(by), int16(bw%40), int16(bh%40))
		parts := a.Subtract(b)
		total := 0
		for _, p := range parts {
			if p.Empty() {
				return false // no degenerate parts
			}
			total += p.Area()
		}
		return total == a.Area()-a.Intersect(b).Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: intersection is commutative and contained in both.
func TestQuickIntersectLaws(t *testing.T) {
	f := func(ax, ay int8, aw, ah uint8, bx, by int8, bw, bh uint8) bool {
		a := R(int16(ax), int16(ay), int16(aw%40), int16(ah%40))
		b := R(int16(bx), int16(by), int16(bw%40), int16(bh%40))
		i1, i2 := a.Intersect(b), b.Intersect(a)
		if i1 != i2 {
			return false
		}
		if i1.Empty() {
			return true
		}
		return a.ContainsRect(i1) && b.ContainsRect(i1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRegionAddDisjoint(t *testing.T) {
	var g Region
	g.Add(R(0, 0, 10, 10))
	g.Add(R(5, 5, 10, 10)) // overlapping add
	if g.Area() != 100+100-25 {
		t.Errorf("area = %d, want 175", g.Area())
	}
	rects := g.Rects()
	for i, a := range rects {
		for j, b := range rects {
			if i != j && a.Overlaps(b) {
				t.Fatalf("region rects overlap: %v %v", a, b)
			}
		}
	}
	// Adding a covered rect changes nothing.
	before := g.Area()
	g.Add(R(1, 1, 3, 3))
	if g.Area() != before {
		t.Errorf("covered add changed area to %d", g.Area())
	}
}

func TestRegionRemove(t *testing.T) {
	g := NewRegion(R(0, 0, 10, 10))
	g.Remove(R(0, 0, 5, 10))
	if g.Area() != 50 {
		t.Errorf("area = %d", g.Area())
	}
	if g.Contains(Point{X: 2, Y: 2}) || !g.Contains(Point{X: 7, Y: 2}) {
		t.Error("wrong half removed")
	}
	g.Remove(R(0, 0, 20, 20))
	if !g.Empty() {
		t.Error("full removal left points")
	}
}

func TestRegionIntersectRectAndBounds(t *testing.T) {
	g := NewRegion(R(0, 0, 4, 4), R(10, 10, 4, 4))
	if b := g.Bounds(); b != R(0, 0, 14, 14) {
		t.Errorf("bounds = %v", b)
	}
	g.IntersectRect(R(0, 0, 12, 12))
	if g.Area() != 16+4 {
		t.Errorf("clipped area = %d", g.Area())
	}
	g.Clear()
	if !g.Empty() || g.Bounds() != (Rect{}) {
		t.Error("clear failed")
	}
}

// Property: region area equals the area of the union of the added rects
// (computed by brute-force point membership on a small grid).
func TestQuickRegionAreaMatchesPointSet(t *testing.T) {
	f := func(rs [6][4]uint8) bool {
		var g Region
		grid := [32][32]bool{}
		for _, q := range rs {
			r := R(int16(q[0]%20), int16(q[1]%20), int16(q[2]%12), int16(q[3]%12))
			g.Add(r)
			for y := r.Y; y < r.Y+r.H && y < 32; y++ {
				for x := r.X; x < r.X+r.W && x < 32; x++ {
					grid[y][x] = true
				}
			}
		}
		want := 0
		for y := range grid {
			for x := range grid[y] {
				if grid[y][x] {
					want++
					if !g.Contains(Point{X: int16(x), Y: int16(y)}) {
						return false
					}
				} else if g.Contains(Point{X: int16(x), Y: int16(y)}) {
					return false
				}
			}
		}
		return g.Area() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPointOps(t *testing.T) {
	p := Point{X: 3, Y: 4}
	if p.Add(Point{X: 1, Y: 1}) != (Point{X: 4, Y: 5}) {
		t.Error("add")
	}
	if p.Sub(Point{X: 1, Y: 1}) != (Point{X: 2, Y: 3}) {
		t.Error("sub")
	}
	if !p.In(R(0, 0, 10, 10)) || p.In(R(0, 0, 3, 3)) {
		t.Error("in")
	}
	if p.String() != "(3,4)" {
		t.Errorf("String() = %q", p.String())
	}
}
