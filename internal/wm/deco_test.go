package wm

import (
	"testing"

	"clam/internal/dynload"
)

func decoFixture(t *testing.T) (*Screen, *Window, *Window, *Deco) {
	t.Helper()
	s := NewScreen(200, 150, nil)
	base := NewBaseWindow(s)
	w := base.Create(R(20, 20, 80, 60), 2)
	d := NewDeco()
	d.Attach(w, "DEMO")
	return s, base, w, d
}

func TestDecoPaintsBarAndTitle(t *testing.T) {
	s, _, _, d := decoFixture(t)
	if d.Title() != "DEMO" {
		t.Errorf("title %q", d.Title())
	}
	// Bar pixels at the window's top edge (screen 20..100 x 20..20+bar).
	if s.PixelAt(25, 21) != 60 {
		t.Error("bar not painted")
	}
	// Title text pixels.
	if s.CountColor(255) == 0 {
		t.Error("title not drawn")
	}
	// Close box near the right edge.
	if s.PixelAt(int64(20+80-barHeight/2), 25) != 160 {
		t.Error("close box not painted")
	}
}

func TestDecoSetTitleRepaints(t *testing.T) {
	s, _, _, d := decoFixture(t)
	before := s.CountColor(255)
	d.SetTitle("A MUCH LONGER TITLE")
	if s.CountColor(255) <= before {
		t.Error("longer title did not add pixels")
	}
}

func TestDecoDragMovesWindow(t *testing.T) {
	s, _, w, d := decoFixture(t)
	start := w.Bounds()
	// Press in the bar (window coords (10,3) → screen (30,23)).
	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 30, Y: 23, Buttons: ButtonLeft})
	// Drag right/down in small steps so the pointer stays inside the bar.
	for i := int16(1); i <= 10; i++ {
		s.InjectMouse(MouseEvent{Kind: MouseMove, X: 30 + i, Y: 23 + i/2})
	}
	s.InjectMouse(MouseEvent{Kind: MouseUp, X: 40, Y: 28})
	got := w.Bounds()
	if got.X != start.X+10 || got.Y != start.Y+5 {
		t.Errorf("window moved to %v, want +10,+5 from %v", got, start)
	}
	if d.Moves() == 0 {
		t.Error("no drag steps recorded")
	}
	// The vacated area is repainted with the base background.
	if s.PixelAt(int64(start.X)+1, int64(start.Y)+barHeight+1) == 2 {
		t.Error("old window area not repainted")
	}
}

func TestDecoCloseBoxDestroysWindow(t *testing.T) {
	s, base, w, d := decoFixture(t)
	var closedTitle string
	d.OnClosed(func(title string) { closedTitle = title })
	// Click the close box: window coords (W - bar/2, bar/2) → screen.
	b := w.Bounds()
	cx := int64(b.X + b.W - barHeight/2)
	cy := int64(b.Y + barHeight/2)
	s.InjectMouse(MouseEvent{Kind: MouseDown, X: int16(cx), Y: int16(cy), Buttons: ButtonLeft})
	if base.ChildCount() != 0 {
		t.Error("window not destroyed by close box")
	}
	if closedTitle != "DEMO" {
		t.Errorf("closed upcall got %q", closedTitle)
	}
	// Further events must not panic the detached deco.
	s.InjectMouse(MouseEvent{Kind: MouseMove, X: int16(cx), Y: int16(cy)})
}

func TestDecoClickInContentDoesNotDrag(t *testing.T) {
	s, _, w, _ := decoFixture(t)
	start := w.Bounds()
	// Press well below the bar, then move.
	s.InjectMouse(MouseEvent{Kind: MouseDown, X: 50, Y: 60})
	s.InjectMouse(MouseEvent{Kind: MouseMove, X: 60, Y: 70})
	s.InjectMouse(MouseEvent{Kind: MouseUp, X: 60, Y: 70})
	if w.Bounds() != start {
		t.Error("content click dragged the window")
	}
}

func TestDecoClassRegistered(t *testing.T) {
	lib := dynload.NewLibrary()
	MustRegister(lib, DefaultConfig)
	if _, err := lib.Lookup("deco", 0); err != nil {
		t.Errorf("deco class missing: %v", err)
	}
}
