package wm

import (
	"bytes"
	"testing"
)

func TestOnDamageAndFlush(t *testing.T) {
	s := NewScreen(50, 50, nil)
	var batches [][]Rect
	s.OnDamage(func(rs []Rect) { batches = append(batches, rs) })

	s.Fill(R(0, 0, 5, 5), 1)
	s.Fill(R(10, 10, 5, 5), 2)
	if len(batches) != 0 {
		t.Fatal("damage delivered before flush")
	}
	n := s.FlushDamage()
	if n == 0 || len(batches) != 1 {
		t.Fatalf("flush posted %d rects in %d batches", n, len(batches))
	}
	area := 0
	for _, r := range batches[0] {
		area += r.Area()
	}
	if area != 50 {
		t.Errorf("damage area %d, want 50", area)
	}
	// Flushed damage is consumed.
	if s.FlushDamage() != 0 {
		t.Error("second flush re-posted damage")
	}
	if len(s.TakeDamage()) != 0 {
		t.Error("TakeDamage sees flushed damage")
	}
}

func TestFlushDamageWithoutObserversKeepsDamage(t *testing.T) {
	s := NewScreen(20, 20, nil)
	s.Fill(R(0, 0, 3, 3), 1)
	if s.FlushDamage() != 0 {
		t.Error("flush posted with no observers")
	}
	if len(s.TakeDamage()) == 0 {
		t.Error("damage lost by observer-less flush")
	}
}

func TestReadRect(t *testing.T) {
	s := NewScreen(10, 10, nil)
	s.Fill(R(2, 2, 3, 2), 7)
	got := s.ReadRect(R(2, 2, 3, 2))
	want := []byte{7, 7, 7, 7, 7, 7}
	if !bytes.Equal(got, want) {
		t.Errorf("ReadRect = %v", got)
	}
	// Clipped read.
	if got := s.ReadRect(R(8, 8, 5, 5)); len(got) != 4 {
		t.Errorf("clipped read length %d", len(got))
	}
	if s.ReadRect(R(50, 50, 5, 5)) != nil {
		t.Error("off-screen read returned pixels")
	}
}

// Incremental mirroring: a client keeps a local copy in sync using only
// damage batches and ReadRect — the remote-display pattern.
func TestIncrementalMirroring(t *testing.T) {
	s := NewScreen(40, 30, nil)
	mirror := make([]byte, 40*30)
	s.OnDamage(func(rs []Rect) {
		for _, r := range rs {
			pix := s.ReadRect(r)
			i := 0
			for y := r.Y; y < r.Y+r.H; y++ {
				for x := r.X; x < r.X+r.W; x++ {
					mirror[int(y)*40+int(x)] = pix[i]
					i++
				}
			}
		}
	})
	base := NewBaseWindow(s)
	w := base.Create(R(5, 5, 12, 9), 3)
	w.FillRect(R(2, 2, 4, 4), 8)
	s.FlushDamage()
	if !bytes.Equal(mirror, s.Snapshot()) {
		t.Fatal("mirror diverged after first flush")
	}
	w.MoveTo(20, 15)
	s.FlushDamage()
	if !bytes.Equal(mirror, s.Snapshot()) {
		t.Fatal("mirror diverged after move")
	}
}
