package wm

import (
	"sync"
)

// Cursor tracks the pointer position and paints a marker, saving and
// restoring the pixels underneath — the screen-level half of pointer
// feedback.
type Cursor struct {
	mu      sync.Mutex
	scr     *Screen
	pos     Point
	visible bool
	color   int64
	saved   []byte
	savedAt Rect
}

// cursorSize is the square marker extent.
const cursorSize = 3

// NewCursor creates a cursor on the screen.
func NewCursor() *Cursor {
	return &Cursor{color: 254}
}

// AttachScreen binds the cursor to a screen.
func (c *Cursor) AttachScreen(s *Screen) {
	c.mu.Lock()
	c.scr = s
	c.mu.Unlock()
}

// Show makes the cursor visible at its current position.
func (c *Cursor) Show() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.visible || c.scr == nil {
		return
	}
	c.visible = true
	c.paintLocked()
}

// Hide removes the cursor, restoring the pixels underneath.
func (c *Cursor) Hide() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.visible {
		return
	}
	c.visible = false
	c.restoreLocked()
}

// MoveTo relocates the cursor.
func (c *Cursor) MoveTo(x, y int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.visible {
		c.restoreLocked()
	}
	c.pos = Point{X: int16(x), Y: int16(y)}
	if c.visible {
		c.paintLocked()
	}
}

// Pos returns the cursor position.
func (c *Cursor) Pos() Point {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pos
}

func (c *Cursor) paintLocked() {
	r := Rect{X: c.pos.X, Y: c.pos.Y, W: cursorSize, H: cursorSize}.Intersect(c.scr.Bounds())
	if r.Empty() {
		c.savedAt = Rect{}
		return
	}
	c.savedAt = r
	c.saved = c.saved[:0]
	for y := r.Y; y < r.Y+r.H; y++ {
		for x := r.X; x < r.X+r.W; x++ {
			c.saved = append(c.saved, byte(c.scr.PixelAt(int64(x), int64(y))))
		}
	}
	c.scr.Fill(r, c.color)
}

func (c *Cursor) restoreLocked() {
	r := c.savedAt
	if r.Empty() {
		return
	}
	i := 0
	for y := r.Y; y < r.Y+r.H; y++ {
		for x := r.X; x < r.X+r.W; x++ {
			c.scr.Fill(Rect{X: x, Y: y, W: 1, H: 1}, int64(c.saved[i]))
			i++
		}
	}
	c.savedAt = Rect{}
}

// Button is a clickable region layered over a window: it fills itself,
// watches mouse events, and upcalls its registered procedures on click —
// a minimal interactive widget built purely from the upcall machinery.
type Button struct {
	mu      sync.Mutex
	win     *Window
	rect    Rect // in the attached window's coordinates
	color   int64
	pressed bool
	clicks  []func(int64)
	nclicks int64
}

// NewButton creates an unattached button.
func NewButton() *Button {
	return &Button{color: 7}
}

// Attach places the button on a window at r (window coordinates) and
// registers for its mouse events.
func (b *Button) Attach(w *Window, r Rect) {
	b.mu.Lock()
	b.win = w
	b.rect = r
	b.mu.Unlock()
	w.FillRect(r, b.color)
	w.PostMouse(b.Mouse)
}

// OnClick registers a procedure receiving the running click count.
func (b *Button) OnClick(fn func(int64)) {
	if fn == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.clicks = append(b.clicks, fn)
}

// Mouse is the button's upcall procedure.
func (b *Button) Mouse(ev MouseEvent) {
	b.mu.Lock()
	inside := ev.Pos().In(b.rect)
	var fire []func(int64)
	var n int64
	switch {
	case ev.Kind == MouseDown && inside:
		b.pressed = true
	case ev.Kind == MouseUp && b.pressed:
		b.pressed = false
		if inside {
			b.nclicks++
			n = b.nclicks
			fire = append(([]func(int64))(nil), b.clicks...)
		}
	}
	b.mu.Unlock()
	for _, fn := range fire {
		fn(n)
	}
}

// Clicks reports the click count.
func (b *Button) Clicks() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nclicks
}

// Menu is a pop-up list: Show paints it, mouse-up inside selects an item
// and upcalls the registered procedures with (index, label).
type Menu struct {
	mu       sync.Mutex
	win      *Window
	items    []string
	at       Rect // occupied area in window coordinates, empty when hidden
	rowH     int16
	selected []func(int64, string)
}

// NewMenu creates an empty menu.
func NewMenu() *Menu {
	return &Menu{rowH: 10}
}

// AttachWindow binds the menu to a window and registers for its events.
func (m *Menu) AttachWindow(w *Window) {
	m.mu.Lock()
	m.win = w
	m.mu.Unlock()
	w.PostMouse(m.Mouse)
}

// AddItem appends a menu entry.
func (m *Menu) AddItem(label string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.items = append(m.items, label)
}

// Items reports the number of entries.
func (m *Menu) Items() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.items))
}

// OnSelect registers a selection procedure.
func (m *Menu) OnSelect(fn func(int64, string)) {
	if fn == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.selected = append(m.selected, fn)
}

// Show pops the menu up at p (window coordinates).
func (m *Menu) Show(x, y int64) {
	m.mu.Lock()
	win := m.win
	n := int16(len(m.items))
	m.at = Rect{X: int16(x), Y: int16(y), W: 60, H: n * m.rowH}
	at := m.at
	m.mu.Unlock()
	if win == nil || n == 0 {
		return
	}
	win.FillRect(at, 200)
	win.BorderRect(at, 255)
}

// Hide removes the menu.
func (m *Menu) Hide() {
	m.mu.Lock()
	win := m.win
	at := m.at
	m.at = Rect{}
	m.mu.Unlock()
	if win == nil || at.Empty() {
		return
	}
	win.FillRect(at, win.Background())
}

// Mouse is the menu's upcall procedure: a mouse-up inside the shown menu
// selects the row under the pointer.
func (m *Menu) Mouse(ev MouseEvent) {
	if ev.Kind != MouseUp {
		return
	}
	m.mu.Lock()
	at := m.at
	rowH := m.rowH
	var fire []func(int64, string)
	idx := int64(-1)
	var label string
	if !at.Empty() && ev.Pos().In(at) {
		idx = int64((ev.Y - at.Y) / rowH)
		if idx >= 0 && idx < int64(len(m.items)) {
			label = m.items[idx]
			fire = append(([]func(int64, string))(nil), m.selected...)
		}
	}
	m.mu.Unlock()
	if idx < 0 || label == "" && len(fire) == 0 {
		return
	}
	for _, fn := range fire {
		fn(idx, label)
	}
	m.Hide()
}

// Layout tiles a window's children into a grid — a tiny layout-manager
// class demonstrating a pure server-side layer above windows.
type Layout struct {
	mu   sync.Mutex
	cols int64
	gap  int16
}

// NewLayout creates a layout manager with 2 columns.
func NewLayout() *Layout {
	return &Layout{cols: 2, gap: 2}
}

// SetColumns configures the grid width.
func (l *Layout) SetColumns(n int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n > 0 {
		l.cols = n
	}
}

// Tile arranges all children of w in a grid filling the window.
func (l *Layout) Tile(w *Window) {
	l.mu.Lock()
	cols := l.cols
	gap := l.gap
	l.mu.Unlock()

	n := w.ChildCount()
	if n == 0 {
		return
	}
	rows := (n + cols - 1) / cols
	b := w.Bounds()
	cw := (int64(b.W) - int64(gap)*(cols+1)) / cols
	ch := (int64(b.H) - int64(gap)*(rows+1)) / rows
	if cw <= 0 || ch <= 0 {
		return
	}
	w.mu.Lock()
	kids := append([]*Window(nil), w.children...)
	w.mu.Unlock()
	for i, kid := range kids {
		col := int64(i) % cols
		row := int64(i) / cols
		x := int64(gap) + col*(cw+int64(gap))
		y := int64(gap) + row*(ch+int64(gap))
		kid.Resize(cw, ch)
		kid.MoveTo(x, y)
	}
}
