package wm

import "testing"

func consoleFixture(t *testing.T) (*Screen, *Console) {
	t.Helper()
	s := NewScreen(200, 100, nil)
	base := NewBaseWindow(s)
	w := base.Create(R(10, 10, 150, 60), 1)
	c := NewConsole()
	c.Attach(w)
	return s, c
}

func TestConsolePrintAndRead(t *testing.T) {
	s, c := consoleFixture(t)
	c.Println("HELLO")
	if c.LineCount() != 1 || c.Line(0) != "HELLO" {
		t.Errorf("lines: %d %q", c.LineCount(), c.Line(0))
	}
	if s.CountColor(255) == 0 {
		t.Error("text not painted")
	}
	if c.Line(5) != "" || c.Line(-1) != "" {
		t.Error("out-of-range line not empty")
	}
}

func TestConsoleMultilinePrintln(t *testing.T) {
	_, c := consoleFixture(t)
	c.Println("A\nB\nC")
	if c.LineCount() != 3 || c.Line(2) != "C" {
		t.Errorf("lines = %d", c.LineCount())
	}
}

func TestConsoleScrollsWhenFull(t *testing.T) {
	_, c := consoleFixture(t)
	rows := c.Rows()
	if rows <= 0 {
		t.Fatalf("rows = %d", rows)
	}
	for i := int64(0); i < rows+3; i++ {
		c.Println(fmtLine(i))
	}
	if c.LineCount() != rows {
		t.Errorf("retained %d lines, want %d", c.LineCount(), rows)
	}
	// The oldest lines scrolled off; the first retained line is #3.
	if c.Line(0) != fmtLine(3) {
		t.Errorf("top line %q, want %q", c.Line(0), fmtLine(3))
	}
}

func fmtLine(i int64) string {
	return "LINE " + string(rune('0'+i%10))
}

func TestConsoleClear(t *testing.T) {
	s, c := consoleFixture(t)
	c.Println("XYZZY")
	c.Clear()
	if c.LineCount() != 0 {
		t.Error("lines survive Clear")
	}
	if s.CountColor(255) != 0 {
		t.Error("pixels survive Clear")
	}
}

func TestConsoleSetInk(t *testing.T) {
	s, c := consoleFixture(t)
	c.Println("X")
	c.SetInk(7)
	if s.CountColor(7) == 0 {
		t.Error("re-inked text missing")
	}
	if s.CountColor(255) != 0 {
		t.Error("old ink left behind")
	}
}

func TestConsoleUnattachedIsSafe(t *testing.T) {
	c := NewConsole()
	c.Println("no window") // must not panic
	c.Clear()
	if c.Rows() != 0 {
		t.Error("rows without window")
	}
}
