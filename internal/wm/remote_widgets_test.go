package wm_test

import (
	"testing"
	"time"

	"clam/internal/core"
	"clam/internal/wm"
)

// The newer classes — deco, console, label, focus — driven remotely
// through the full CLAM stack, including their upcalls.

func TestRemoteDecoratedWindow(t *testing.T) {
	_, scr, base, path := bootWMServer(t)
	c, err := core.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	baseRem, err := c.NamedObject("basewindow")
	if err != nil {
		t.Fatal(err)
	}
	var win *core.Remote
	if err := baseRem.CallInto("Create", []any{&win}, wm.R(30, 30, 100, 60), int64(2)); err != nil {
		t.Fatal(err)
	}
	deco, err := c.New("deco", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := deco.Call("Attach", win, "REMOTE"); err != nil {
		t.Fatal(err)
	}
	var title string
	if err := deco.CallInto("Title", []any{&title}); err != nil || title != "REMOTE" {
		t.Errorf("title %q err %v", title, err)
	}

	// Drag the window by its bar from the device layer.
	scr.InjectMouseWait(wm.MouseEvent{Kind: wm.MouseDown, X: 40, Y: 33, Buttons: wm.ButtonLeft})
	for i := int16(1); i <= 8; i++ {
		scr.InjectMouseWait(wm.MouseEvent{Kind: wm.MouseMove, X: 40 + i, Y: 33})
	}
	scr.InjectMouseWait(wm.MouseEvent{Kind: wm.MouseUp, X: 48, Y: 33})
	if got := base.ChildAt(wm.Point{X: 39, Y: 35}); got == nil {
		t.Error("window did not move right")
	}

	// Close it via the box; the closed upcall crosses to this client.
	closed := make(chan string, 1)
	if err := deco.Call("OnClosed", func(title string) { closed <- title }); err != nil {
		t.Fatal(err)
	}
	// The window moved +8 in x: close box center accordingly.
	scr.InjectMouseWait(wm.MouseEvent{Kind: wm.MouseDown, X: 38 + 100 - 5, Y: 35, Buttons: wm.ButtonLeft})
	select {
	case titleGot := <-closed:
		if titleGot != "REMOTE" {
			t.Errorf("closed upcall title %q", titleGot)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("closed upcall never arrived")
	}
	if base.ChildCount() != 0 {
		t.Errorf("children after close: %d", base.ChildCount())
	}
}

func TestRemoteConsoleLogging(t *testing.T) {
	_, scr, _, path := bootWMServer(t)
	c, err := core.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	baseRem, err := c.NamedObject("basewindow")
	if err != nil {
		t.Fatal(err)
	}
	var win *core.Remote
	if err := baseRem.CallInto("Create", []any{&win}, wm.R(5, 5, 180, 80), int64(0)); err != nil {
		t.Fatal(err)
	}
	console, err := c.New("console", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := console.Call("Attach", win); err != nil {
		t.Fatal(err)
	}
	// Log lines asynchronously — the natural batched use.
	for i := 0; i < 5; i++ {
		if err := console.Async("Println", "EVENT"); err != nil {
			t.Fatal(err)
		}
	}
	var count int64
	if err := console.CallInto("LineCount", []any{&count}); err != nil || count != 5 {
		t.Errorf("count=%d err=%v", count, err)
	}
	if scr.CountColor(255) == 0 {
		t.Error("console text not on screen")
	}
}

func TestRemoteLabelAndFocus(t *testing.T) {
	srv, scr, base, path := bootWMServer(t)
	_ = srv
	c, err := core.Dial("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	baseRem, err := c.NamedObject("basewindow")
	if err != nil {
		t.Fatal(err)
	}
	scrRem, err := c.NamedObject("screen")
	if err != nil {
		t.Fatal(err)
	}

	lbl, err := c.New("label", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := lbl.Call("Attach", baseRem, int64(4), int64(140)); err != nil {
		t.Fatal(err)
	}
	if err := lbl.Call("SetText", "STATUS OK"); err != nil {
		t.Fatal(err)
	}
	var lit int64
	if err := scrRem.CallInto("CountColor", []any{&lit}, int64(255)); err != nil || lit == 0 {
		t.Errorf("label pixels=%d err=%v", lit, err)
	}

	// Focus: create a window, focus it remotely, inject a key; the
	// registered key handler upcalls into this client.
	var win *core.Remote
	if err := baseRem.CallInto("Create", []any{&win}, wm.R(60, 60, 40, 40), int64(3)); err != nil {
		t.Fatal(err)
	}
	focus, err := c.New("focus", 0)
	if err != nil {
		t.Fatal(err)
	}
	scrObj, _ := srv.Named("screen")
	_ = scrObj
	if err := focus.Call("Attach", scrRem, baseRem); err != nil {
		t.Fatal(err)
	}
	keys := make(chan wm.KeyEvent, 2)
	if err := win.Call("PostKey", func(ev wm.KeyEvent) { keys <- ev }); err != nil {
		t.Fatal(err)
	}
	if err := focus.Call("SetFocus", win); err != nil {
		t.Fatal(err)
	}
	scr.InjectKey(wm.KeyEvent{Code: 42, Down: true})
	select {
	case ev := <-keys:
		if ev.Code != 42 {
			t.Errorf("key %v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("focused key upcall never arrived")
	}
	_ = base
}
