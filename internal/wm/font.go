package wm

import "strings"

// A fixed 5×7 bitmap font, the kind a 1988 window server would carry for
// titles and labels. Each glyph is seven rows of five bits, MSB left.
// Unknown characters render as the box glyph; lowercase folds to
// uppercase.

// Glyph metrics.
const (
	GlyphWidth  = 5
	GlyphHeight = 7
	// GlyphAdvance includes one column of spacing.
	GlyphAdvance = GlyphWidth + 1
)

var font5x7 = map[rune][GlyphHeight]uint8{
	' ': {0, 0, 0, 0, 0, 0, 0},
	'A': {0b01110, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001},
	'B': {0b11110, 0b10001, 0b10001, 0b11110, 0b10001, 0b10001, 0b11110},
	'C': {0b01110, 0b10001, 0b10000, 0b10000, 0b10000, 0b10001, 0b01110},
	'D': {0b11100, 0b10010, 0b10001, 0b10001, 0b10001, 0b10010, 0b11100},
	'E': {0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b11111},
	'F': {0b11111, 0b10000, 0b10000, 0b11110, 0b10000, 0b10000, 0b10000},
	'G': {0b01110, 0b10001, 0b10000, 0b10111, 0b10001, 0b10001, 0b01111},
	'H': {0b10001, 0b10001, 0b10001, 0b11111, 0b10001, 0b10001, 0b10001},
	'I': {0b01110, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'J': {0b00111, 0b00010, 0b00010, 0b00010, 0b00010, 0b10010, 0b01100},
	'K': {0b10001, 0b10010, 0b10100, 0b11000, 0b10100, 0b10010, 0b10001},
	'L': {0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b10000, 0b11111},
	'M': {0b10001, 0b11011, 0b10101, 0b10101, 0b10001, 0b10001, 0b10001},
	'N': {0b10001, 0b11001, 0b10101, 0b10011, 0b10001, 0b10001, 0b10001},
	'O': {0b01110, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110},
	'P': {0b11110, 0b10001, 0b10001, 0b11110, 0b10000, 0b10000, 0b10000},
	'Q': {0b01110, 0b10001, 0b10001, 0b10001, 0b10101, 0b10010, 0b01101},
	'R': {0b11110, 0b10001, 0b10001, 0b11110, 0b10100, 0b10010, 0b10001},
	'S': {0b01111, 0b10000, 0b10000, 0b01110, 0b00001, 0b00001, 0b11110},
	'T': {0b11111, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0b00100},
	'U': {0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01110},
	'V': {0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b01010, 0b00100},
	'W': {0b10001, 0b10001, 0b10001, 0b10101, 0b10101, 0b10101, 0b01010},
	'X': {0b10001, 0b10001, 0b01010, 0b00100, 0b01010, 0b10001, 0b10001},
	'Y': {0b10001, 0b10001, 0b01010, 0b00100, 0b00100, 0b00100, 0b00100},
	'Z': {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b10000, 0b11111},
	'0': {0b01110, 0b10001, 0b10011, 0b10101, 0b11001, 0b10001, 0b01110},
	'1': {0b00100, 0b01100, 0b00100, 0b00100, 0b00100, 0b00100, 0b01110},
	'2': {0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0b01000, 0b11111},
	'3': {0b11111, 0b00010, 0b00100, 0b00010, 0b00001, 0b10001, 0b01110},
	'4': {0b00010, 0b00110, 0b01010, 0b10010, 0b11111, 0b00010, 0b00010},
	'5': {0b11111, 0b10000, 0b11110, 0b00001, 0b00001, 0b10001, 0b01110},
	'6': {0b00110, 0b01000, 0b10000, 0b11110, 0b10001, 0b10001, 0b01110},
	'7': {0b11111, 0b00001, 0b00010, 0b00100, 0b01000, 0b01000, 0b01000},
	'8': {0b01110, 0b10001, 0b10001, 0b01110, 0b10001, 0b10001, 0b01110},
	'9': {0b01110, 0b10001, 0b10001, 0b01111, 0b00001, 0b00010, 0b01100},
	'-': {0, 0, 0, 0b11111, 0, 0, 0},
	'+': {0, 0b00100, 0b00100, 0b11111, 0b00100, 0b00100, 0},
	'.': {0, 0, 0, 0, 0, 0b01100, 0b01100},
	',': {0, 0, 0, 0, 0b01100, 0b00100, 0b01000},
	':': {0, 0b01100, 0b01100, 0, 0b01100, 0b01100, 0},
	'!': {0b00100, 0b00100, 0b00100, 0b00100, 0b00100, 0, 0b00100},
	'?': {0b01110, 0b10001, 0b00001, 0b00010, 0b00100, 0, 0b00100},
	'/': {0b00001, 0b00010, 0b00010, 0b00100, 0b01000, 0b01000, 0b10000},
	'=': {0, 0, 0b11111, 0, 0b11111, 0, 0},
	'(': {0b00010, 0b00100, 0b01000, 0b01000, 0b01000, 0b00100, 0b00010},
	')': {0b01000, 0b00100, 0b00010, 0b00010, 0b00010, 0b00100, 0b01000},
	'%': {0b11001, 0b11010, 0b00010, 0b00100, 0b01000, 0b01011, 0b10011},
	'*': {0, 0b10101, 0b01110, 0b11111, 0b01110, 0b10101, 0},
	'_': {0, 0, 0, 0, 0, 0, 0b11111},
}

// boxGlyph stands in for characters the font lacks.
var boxGlyph = [GlyphHeight]uint8{0b11111, 0b10001, 0b10001, 0b10001, 0b10001, 0b10001, 0b11111}

// Glyph returns the bitmap rows for r, folding lowercase and substituting
// the box glyph for unknown characters. known reports whether the font
// had the (folded) character.
func Glyph(r rune) (rows [GlyphHeight]uint8, known bool) {
	if r >= 'a' && r <= 'z' {
		r = r - 'a' + 'A'
	}
	rows, known = font5x7[r]
	if !known {
		rows = boxGlyph
	}
	return rows, known
}

// TextWidth returns the pixel width of s in the fixed font.
func TextWidth(s string) int16 {
	n := len([]rune(s))
	if n == 0 {
		return 0
	}
	return int16(n*GlyphAdvance - 1)
}

// DrawText renders s onto the screen at (x, y) in the given color,
// clipping as usual, and returns the advance width. It is the primitive
// Label and title-drawing code build on.
func (s *Screen) DrawText(x, y int16, text string, color int64) int16 {
	cx := x
	for _, r := range text {
		rows, _ := Glyph(r)
		for ry := 0; ry < GlyphHeight; ry++ {
			bits := rows[ry]
			for rx := 0; rx < GlyphWidth; rx++ {
				if bits&(1<<(GlyphWidth-1-rx)) != 0 {
					s.Fill(Rect{X: cx + int16(rx), Y: y + int16(ry), W: 1, H: 1}, color)
				}
			}
		}
		cx += GlyphAdvance
	}
	return cx - x
}

// Label is a text widget: attached to a window, it paints its text and
// repaints on change. Like every class here it is dynamically loadable
// and remotely drivable.
type Label struct {
	win   *Window
	at    Point
	text  string
	color int64
	bg    int64
}

// NewLabel returns an unattached label.
func NewLabel() *Label {
	return &Label{color: 255}
}

// Attach places the label on w at p (window coordinates).
func (l *Label) Attach(w *Window, x, y int64) {
	l.win = w
	l.at = Point{X: int16(x), Y: int16(y)}
	l.bg = w.Background()
	l.paint()
}

// SetText replaces the text, erasing the previous rendering.
func (l *Label) SetText(text string) {
	if l.win != nil && l.text != "" {
		l.erase()
	}
	l.text = text
	l.paint()
}

// SetColor changes the ink and repaints.
func (l *Label) SetColor(c int64) {
	l.color = c
	l.paint()
}

// Text returns the current text.
func (l *Label) Text() string { return l.text }

// Bounds returns the label's pixel rectangle in window coordinates.
func (l *Label) Bounds() Rect {
	return Rect{X: l.at.X, Y: l.at.Y, W: TextWidth(l.text), H: GlyphHeight}
}

func (l *Label) erase() {
	if l.win == nil {
		return
	}
	l.win.FillRect(l.Bounds(), l.bg)
}

func (l *Label) paint() {
	if l.win == nil || l.text == "" {
		return
	}
	dx, dy := l.win.screenOffset()
	l.win.scr.DrawText(dx+l.at.X, dy+l.at.Y, l.text, l.color)
}

// uppercase helper for tests.
func foldUpper(s string) string { return strings.ToUpper(s) }
