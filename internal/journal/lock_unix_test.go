//go:build unix

package journal

import (
	"strings"
	"testing"
)

// TestOpenRefusesSecondProcessLock proves one journal directory admits
// one live writer: a second Open while the first is live must fail with
// a diagnostic naming the directory, and closing the first must free the
// lock for the next Open. (Same-process flocks on separate fds conflict
// exactly like cross-process ones, so this exercises the real kernel
// lock, not a mock.)
func TestOpenRefusesSecondProcessLock(t *testing.T) {
	dir := t.TempDir()
	j1, _, err := Open(dir, Options{Log: t.Logf})
	if err != nil {
		t.Fatalf("first open: %v", err)
	}
	if _, _, err = Open(dir, Options{Log: t.Logf}); err == nil {
		t.Fatal("second Open of a live journal dir succeeded; want lock refusal")
	} else if !strings.Contains(err.Error(), "in use by another server") {
		t.Fatalf("second Open error = %v; want lock diagnostic", err)
	}
	if err := j1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	j2, _, err := Open(dir, Options{Log: t.Logf})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	j2.Close()
}
