//go:build !unix

package journal

import "os"

// Advisory file locking is unix-only; elsewhere the journal trusts the
// operator to run one server per directory.
func acquireDirLock(dir string) (*os.File, error) { return nil, nil }
