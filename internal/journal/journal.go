// Package journal implements the server's opt-in write-ahead log: the
// durable half of session resurrection. PR 5's resume protocol survives
// link death but not process death — a kill -9 loses every parked
// session, handle-table entry and fan-out registration. The journal
// records the server's control plane (resume-token grants with their
// epoch, handle mints and revocations, name bindings, RUC and multicast
// registrations, per-session receive high-water marks) as length-prefixed
// CRC-checked records, so a restarted server can rebuild the park table
// and let the existing MsgResume handshake reattach clients with no
// client-side changes.
//
// Durability classes keep the hot call path off the disk:
//
//   - Control-plane records (grants, epoch bumps, mints, bindings) are
//     appended synchronously: the caller waits for the group commit's
//     fsync before acting on the record (e.g. before the hello reply
//     carries the token to the client).
//   - Receive marks — one per executed call frame — are coalesced
//     per-session (latest wins) and ride the next group commit
//     asynchronously; mark-only commits write to the OS each tick but
//     lag the fsync (bounded by maxFsyncLag), so steady-state call
//     traffic costs one buffered write per tick, not one fsync. A mark
//     is written only after its frame executed, so a crash can lose
//     recent marks but never invent one: the recovered receive window
//     is a floor, and the worst case is a replayed frame re-executing
//     against post-restart state, which is exactly the at-most-once
//     contract the resume protocol already provides (DESIGN.md §6.3,
//     §6.5).
//
// The journal folds every record into an in-memory State as it is
// appended, which makes compaction self-contained: a snapshot of the
// live State is written to a temporary file, fsynced, and renamed over
// the log, bounding growth without consulting the server (and therefore
// without any lock-order entanglement with it).
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"clam/internal/xdr"
)

// Record kinds. The on-disk kind values are part of the journal format;
// append only.
const (
	recFloors  uint32 = 1  // id-space floors (emitted by compaction)
	recGrant   uint32 = 2  // session created: resume token granted
	recEpoch   uint32 = 3  // session resumed: epoch fence bumped
	recMark    uint32 = 4  // receive high-water mark advanced
	recMint    uint32 = 5  // handle minted
	recRevoke  uint32 = 6  // handle revoked
	recName    uint32 = 7  // well-known name bound to a handle
	recSub     uint32 = 8  // multicast subscription registered
	recUnsub   uint32 = 9  // multicast subscription cancelled
	recRUC     uint32 = 10 // point-to-point RUC procedure bound
	recSessEnd uint32 = 11 // session ended (evicted, expired, goodbye)
)

// Format framing.
const (
	magic         = "CLAMJRNL"
	formatVersion = uint32(1)
	headerSize    = len(magic) + 4
	// maxRecordSize bounds one record body; anything larger on read is
	// corruption, not data.
	maxRecordSize = 1 << 20
)

// Options configures Open. The zero value selects the defaults.
type Options struct {
	// Log receives diagnostics; default log.Printf.
	Log func(format string, args ...any)
	// CommitInterval is the group-commit cadence: how long appended
	// records may sit in memory before the background committer writes
	// and fsyncs them (default 2ms). Synchronous appends wake the
	// committer immediately and only wait out the fsync itself.
	CommitInterval time.Duration
	// CompactThreshold is the journal size (bytes) past which the
	// committer folds the log into a snapshot of its live state
	// (default 4MiB). Zero keeps the default; negative disables
	// automatic compaction (Compact may still be called explicitly).
	CompactThreshold int64
}

// SessionState is the recovered durable identity of one session.
type SessionState struct {
	Token   uint64
	Epoch   uint32
	RecvSeq uint64 // receive high-water mark: every frame <= this executed
}

// HandleState is one recovered handle-table entry. The object itself is
// not durable; the server re-binds the (ID, Tag) capability to a
// re-registered named object or a re-instantiated class instance.
type HandleState struct {
	ID      uint64
	Tag     uint64
	Class   string
	Version uint32
	Session uint64 // minting session; zero for server-side mints
}

// SubState is one recovered multicast subscription.
type SubState struct {
	ID      uint64
	Key     uint64
	Topic   string
	ProcID  uint64
	Session uint64
}

// RUCState is one recorded point-to-point RUC binding. The procedure's
// Go func type does not survive a restart, so these are reported (and
// their id space floored) rather than rebuilt; the durable fan-out path
// is the multicast table, whose types re-derive from topic prototypes.
type RUCState struct {
	ID      uint64
	ProcID  uint64
	Session uint64
}

// State is the journal's fold: what a replay of every record yields.
// Open returns the recovered state; the journal keeps folding appended
// records into its own copy so compaction can snapshot it.
type State struct {
	Sessions map[uint64]*SessionState
	Handles  map[uint64]*HandleState
	Names    map[string]uint64 // well-known name -> handle ID
	Subs     map[uint64]*SubState
	RUCs     map[uint64]*RUCState

	// Id-space floors: the highest identifier ever journaled in each
	// space, preserved across session ends, revocations and compactions
	// so a restarted server never re-mints a live client's identifier.
	MaxSession, MaxHandle, MaxSub, MaxRUC uint64

	// Truncated reports that Open found (and cut) a torn tail record —
	// the expected signature of a crash mid-write.
	Truncated bool
}

func newState() *State {
	return &State{
		Sessions: make(map[uint64]*SessionState),
		Handles:  make(map[uint64]*HandleState),
		Names:    make(map[string]uint64),
		Subs:     make(map[uint64]*SubState),
		RUCs:     make(map[uint64]*RUCState),
	}
}

// record is one decoded journal record; unused fields are zero.
type record struct {
	kind uint32
	// identifiers
	sess, id, tag, key, procID uint64
	// floors (recFloors)
	maxSess, maxHandle, maxSub, maxRUC uint64
	seq                                uint64 // recMark
	epoch                              uint32 // recEpoch
	version                            uint32 // recMint
	name                               string // recMint class / recName name / recSub+recUnsub topic
}

// bundle transfers the record body (kind included) on s.
func (r *record) bundle(s *xdr.Stream) error {
	s.Uint32(&r.kind)
	switch r.kind {
	case recFloors:
		s.Uint64(&r.maxSess)
		s.Uint64(&r.maxHandle)
		s.Uint64(&r.maxSub)
		s.Uint64(&r.maxRUC)
	case recGrant:
		s.Uint64(&r.sess)
		s.Uint64(&r.id) // token
	case recEpoch:
		s.Uint64(&r.sess)
		s.Uint32(&r.epoch)
	case recMark:
		s.Uint64(&r.sess)
		s.Uint64(&r.seq)
	case recMint:
		s.Uint64(&r.id)
		s.Uint64(&r.tag)
		s.String(&r.name) // class name
		s.Uint32(&r.version)
		s.Uint64(&r.sess)
	case recRevoke:
		s.Uint64(&r.id)
	case recName:
		s.String(&r.name)
		s.Uint64(&r.id)
	case recSub, recUnsub:
		s.Uint64(&r.id)
		s.Uint64(&r.key)
		s.String(&r.name) // topic
		s.Uint64(&r.procID)
		s.Uint64(&r.sess)
	case recRUC:
		s.Uint64(&r.id)
		s.Uint64(&r.procID)
		s.Uint64(&r.sess)
	case recSessEnd:
		s.Uint64(&r.sess)
	default:
		if s.Err() == nil {
			s.SetErr(fmt.Errorf("journal: unknown record kind %d", r.kind))
		}
	}
	return s.Err()
}

// apply folds one record into st.
func (st *State) apply(r *record) {
	switch r.kind {
	case recFloors:
		st.MaxSession = max(st.MaxSession, r.maxSess)
		st.MaxHandle = max(st.MaxHandle, r.maxHandle)
		st.MaxSub = max(st.MaxSub, r.maxSub)
		st.MaxRUC = max(st.MaxRUC, r.maxRUC)
	case recGrant:
		st.Sessions[r.sess] = &SessionState{Token: r.id}
		st.MaxSession = max(st.MaxSession, r.sess)
	case recEpoch:
		if ss := st.Sessions[r.sess]; ss != nil {
			ss.Epoch = r.epoch
		}
	case recMark:
		if ss := st.Sessions[r.sess]; ss != nil && r.seq > ss.RecvSeq {
			ss.RecvSeq = r.seq
		}
	case recMint:
		st.Handles[r.id] = &HandleState{
			ID: r.id, Tag: r.tag, Class: r.name, Version: r.version, Session: r.sess,
		}
		st.MaxHandle = max(st.MaxHandle, r.id)
	case recRevoke:
		delete(st.Handles, r.id)
		for name, id := range st.Names {
			if id == r.id {
				delete(st.Names, name)
			}
		}
	case recName:
		st.Names[r.name] = r.id
	case recSub:
		st.Subs[r.id] = &SubState{
			ID: r.id, Key: r.key, Topic: r.name, ProcID: r.procID, Session: r.sess,
		}
		st.MaxSub = max(st.MaxSub, r.id)
	case recUnsub:
		delete(st.Subs, r.id)
	case recRUC:
		st.RUCs[r.id] = &RUCState{ID: r.id, ProcID: r.procID, Session: r.sess}
		st.MaxRUC = max(st.MaxRUC, r.id)
	case recSessEnd:
		delete(st.Sessions, r.sess)
		for id, sub := range st.Subs {
			if sub.Session == r.sess {
				delete(st.Subs, id)
			}
		}
		for id, e := range st.RUCs {
			if e.Session == r.sess {
				delete(st.RUCs, id)
			}
		}
	}
}

// Stats is a point-in-time copy of the journal's I/O counters.
type Stats struct {
	// Appends counts records appended (including coalesced marks as
	// written, not as submitted); SyncAppends the subset whose caller
	// waited for the fsync.
	Appends, SyncAppends uint64
	// Fsyncs counts group commits that reached the disk; Compactions
	// counts snapshot+rename cycles.
	Fsyncs, Compactions uint64
	// SizeBytes is the journal file's current size.
	SizeBytes int64
}

// Journal is an open write-ahead log. All methods are safe for
// concurrent use.
type Journal struct {
	path string
	logf func(string, ...any)

	interval  time.Duration
	compactAt int64

	// mu guards the pending buffer, the coalesced marks, the waiter
	// list, the live state fold and the closed flag. Appends only touch
	// memory under mu; file I/O happens under io on the committer.
	mu      sync.Mutex
	pending xdr.Buffer
	scratch xdr.Buffer // per-record body workspace
	enc     xdr.Stream
	marks   map[uint64]uint64 // session -> latest executed-frame mark
	waiters []chan error
	state   *State
	closed  bool

	// io serializes the committer's write+fsync against compaction.
	io    sync.Mutex
	f     *os.File
	lock  *os.File // flock on the dir's lock file; nil where unsupported
	size  int64
	spare []byte // committer-owned double buffer

	// Fsync lag for asynchronous records (under io): commits containing
	// only coalesced marks write to the OS immediately — a killed process
	// loses nothing in the page cache — but defer the fsync until a sync
	// waiter needs one or lagTicks commits have passed, keeping the
	// steady-state call path to one write per tick instead of one fsync.
	unsynced int64
	lagTicks int

	wake     chan struct{}
	done     chan struct{}
	closedWg sync.WaitGroup

	appends     atomic.Uint64
	syncAppends atomic.Uint64
	fsyncs      atomic.Uint64
	compactions atomic.Uint64
	lastErr     atomic.Value // error
}

// Open opens (or creates) the journal in dir, replays it to its live
// state — truncating a torn tail to the last complete record — and
// starts the group-commit goroutine. The returned State is the caller's
// to consume; the journal keeps its own fold.
func Open(dir string, opts Options) (*Journal, *State, error) {
	if opts.Log == nil {
		opts.Log = log.Printf
	}
	if opts.CommitInterval <= 0 {
		opts.CommitInterval = 2 * time.Millisecond
	}
	switch {
	case opts.CompactThreshold == 0:
		opts.CompactThreshold = 4 << 20
	case opts.CompactThreshold < 0:
		opts.CompactThreshold = 0 // disabled
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	// Exclusive advisory lock on the directory: two processes appending
	// to one journal would interleave records and corrupt recovery. The
	// lock dies with the process — kill -9 included — so a crashed
	// server never wedges its successor.
	lock, err := acquireDirLock(dir)
	if err != nil {
		return nil, nil, err
	}
	path := filepath.Join(dir, "clam.journal")
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		if lock != nil {
			lock.Close()
		}
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{
		path:      path,
		logf:      opts.Log,
		interval:  opts.CommitInterval,
		compactAt: opts.CompactThreshold,
		marks:     make(map[uint64]uint64),
		wake:      make(chan struct{}, 1),
		done:      make(chan struct{}),
		f:         f,
		lock:      lock,
	}
	st, size, err := j.replay(f)
	if err != nil {
		f.Close()
		if lock != nil {
			lock.Close()
		}
		return nil, nil, err
	}
	j.size = size
	j.state = st
	// The journal's own fold must not alias the caller's copy: the
	// server mutates recovered maps while the journal keeps folding.
	j.mu.Lock()
	j.state = cloneState(st)
	j.mu.Unlock()
	j.closedWg.Add(1)
	go j.commitLoop()
	return j, st, nil
}

func cloneState(st *State) *State {
	c := newState()
	for k, v := range st.Sessions {
		cp := *v
		c.Sessions[k] = &cp
	}
	for k, v := range st.Handles {
		cp := *v
		c.Handles[k] = &cp
	}
	for k, v := range st.Names {
		c.Names[k] = v
	}
	for k, v := range st.Subs {
		cp := *v
		c.Subs[k] = &cp
	}
	for k, v := range st.RUCs {
		cp := *v
		c.RUCs[k] = &cp
	}
	c.MaxSession, c.MaxHandle, c.MaxSub, c.MaxRUC = st.MaxSession, st.MaxHandle, st.MaxSub, st.MaxRUC
	c.Truncated = st.Truncated
	return c
}

// replay scans f from the start, folds every complete record into a
// fresh State, and truncates anything after the last complete record
// (the torn tail a crash mid-write leaves behind). It leaves f
// positioned at the end for appending and returns the surviving size.
func (j *Journal) replay(f *os.File) (*State, int64, error) {
	st := newState()
	info, err := f.Stat()
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	if info.Size() == 0 {
		// Fresh journal: stamp the header durably before any record.
		var hdr [12]byte
		copy(hdr[:], magic)
		binary.BigEndian.PutUint32(hdr[8:], formatVersion)
		if _, err := f.Write(hdr[:]); err != nil {
			return nil, 0, fmt.Errorf("journal: %w", err)
		}
		if err := f.Sync(); err != nil {
			return nil, 0, fmt.Errorf("journal: %w", err)
		}
		return st, int64(headerSize), nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("journal: reading header of %s: %w", j.path, err)
	}
	if string(hdr[:8]) != magic {
		return nil, 0, fmt.Errorf("journal: %s is not a clam journal", j.path)
	}
	if v := binary.BigEndian.Uint32(hdr[8:]); v != formatVersion {
		return nil, 0, fmt.Errorf("journal: %s has format version %d, want %d", j.path, v, formatVersion)
	}

	good := int64(headerSize)
	var frame [8]byte
	var body []byte
	var rd xdr.Reader
	var dec xdr.Stream
	var rec record
	for {
		if _, err := io.ReadFull(f, frame[:]); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, 0, fmt.Errorf("journal: %w", err)
			}
			break
		}
		n := binary.BigEndian.Uint32(frame[0:4])
		sum := binary.BigEndian.Uint32(frame[4:8])
		if n == 0 || n > maxRecordSize {
			break // corrupt length: treat as torn tail
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(f, body); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, 0, fmt.Errorf("journal: %w", err)
			}
			break // short body: torn tail
		}
		if crc32.ChecksumIEEE(body) != sum {
			break // bit rot or torn write: stop at the last good record
		}
		rd.Reset(body)
		dec.ResetDecode(&rd)
		rec = record{}
		if err := rec.bundle(&dec); err != nil {
			break // undecodable body: same treatment as a bad checksum
		}
		st.apply(&rec)
		good += 8 + int64(n)
	}
	if good < info.Size() {
		st.Truncated = true
		j.logf("journal: %s: dropping torn tail (%d of %d bytes survive)", j.path, good, info.Size())
		if err := f.Truncate(good); err != nil {
			return nil, 0, fmt.Errorf("journal: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return nil, 0, fmt.Errorf("journal: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	return st, good, nil
}

// --- appending ---------------------------------------------------------------

// ErrClosed reports an append on a closed journal.
var ErrClosed = errors.New("journal: closed")

// appendLocked frames r into the pending buffer and folds it into the
// live state; j.mu must be held.
func (j *Journal) appendLocked(r *record) error {
	j.scratch.Reset()
	j.enc.ResetEncode(&j.scratch)
	if err := r.bundle(&j.enc); err != nil {
		return err
	}
	body := j.scratch.B
	var frame [8]byte
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(body))
	j.pending.B = append(j.pending.B, frame[:]...)
	j.pending.B = append(j.pending.B, body...)
	j.state.apply(r)
	j.appends.Add(1)
	return nil
}

// append queues r for the next group commit without waiting.
func (j *Journal) append(r *record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.appendLocked(r)
}

// appendSync queues r, wakes the committer, and waits until the record
// is on disk (or the journal failed).
func (j *Journal) appendSync(r *record) error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	if err := j.appendLocked(r); err != nil {
		j.mu.Unlock()
		return err
	}
	ch := make(chan error, 1)
	j.waiters = append(j.waiters, ch)
	j.mu.Unlock()
	j.syncAppends.Add(1)
	select {
	case j.wake <- struct{}{}:
	default:
	}
	return <-ch
}

// Grant records a session's resume-token grant. Durable before the
// caller replies to the hello, so a token a client holds is always one
// a restarted server recognizes.
func (j *Journal) Grant(sess, token uint64) error {
	return j.appendSync(&record{kind: recGrant, sess: sess, id: token})
}

// EpochBump records a successful resume's new epoch fence. Durable
// before the resume reply.
func (j *Journal) EpochBump(sess uint64, epoch uint32) error {
	return j.appendSync(&record{kind: recEpoch, sess: sess, epoch: epoch})
}

// Mark records that every numbered frame of sess at or below seq has
// executed. Marks are coalesced per session (latest wins) and ride the
// next group commit without blocking the caller — the hot-path append.
func (j *Journal) Mark(sess, seq uint64) {
	j.mu.Lock()
	if !j.closed && seq > j.marks[sess] {
		j.marks[sess] = seq
	}
	j.mu.Unlock()
}

// Mint records a handle-table entry: the (id, tag) capability plus the
// class identity and minting session the server needs to re-bind it
// after a restart.
func (j *Journal) Mint(id, tag uint64, class string, version uint32, sess uint64) error {
	return j.appendSync(&record{kind: recMint, id: id, tag: tag, name: class, version: version, sess: sess})
}

// Revoke records a handle revocation.
func (j *Journal) Revoke(id uint64) error {
	return j.appendSync(&record{kind: recRevoke, id: id})
}

// BindName records a well-known-name binding to a minted handle, so
// recovery re-binds the old capability to the re-registered object
// rather than instantiating a stranger of the same class.
func (j *Journal) BindName(name string, id uint64) error {
	return j.appendSync(&record{kind: recName, name: name, id: id})
}

// Subscribe records a multicast registration.
func (j *Journal) Subscribe(id, key uint64, topic string, procID, sess uint64) error {
	return j.appendSync(&record{kind: recSub, id: id, key: key, name: topic, procID: procID, sess: sess})
}

// Unsubscribe records a multicast cancellation.
func (j *Journal) Unsubscribe(topic string, key, id uint64) error {
	return j.appendSync(&record{kind: recUnsub, id: id, key: key, name: topic})
}

// BindRUC records a point-to-point RUC binding (reported, not rebuilt,
// at recovery — see RUCState).
func (j *Journal) BindRUC(id, procID, sess uint64) error {
	return j.appendSync(&record{kind: recRUC, id: id, procID: procID, sess: sess})
}

// EndSession records a session's definitive end; its subscriptions and
// RUC bindings die with it in the fold.
func (j *Journal) EndSession(sess uint64) error {
	return j.appendSync(&record{kind: recSessEnd, sess: sess})
}

// --- group commit ------------------------------------------------------------

func (j *Journal) commitLoop() {
	defer j.closedWg.Done()
	t := time.NewTicker(j.interval)
	defer t.Stop()
	for {
		select {
		case <-j.done:
			j.commitWith(true) // final drain: everything reaches the disk
			return
		case <-j.wake:
		case <-t.C:
		}
		j.commit()
		if j.compactAt > 0 && j.sizeNow() > j.compactAt {
			if err := j.Compact(); err != nil {
				j.logf("journal: compaction failed: %v", err)
			}
		}
	}
}

func (j *Journal) sizeNow() int64 {
	j.io.Lock()
	defer j.io.Unlock()
	return j.size
}

// drainMarksLocked turns the coalesced marks into pending records;
// j.mu must be held.
func (j *Journal) drainMarksLocked() {
	if len(j.marks) == 0 {
		return
	}
	for sess, seq := range j.marks {
		if err := j.appendLocked(&record{kind: recMark, sess: sess, seq: seq}); err != nil {
			j.logf("journal: encoding mark: %v", err)
		}
		delete(j.marks, sess)
	}
}

// maxFsyncLag bounds how many commits an asynchronous-only record may
// sit in the page cache before a periodic fsync covers it: ~100ms at the
// default 2ms interval. A SIGKILL loses none of it (the write already
// reached the OS); only a whole-machine crash can, and marks are a floor
// the resume protocol tolerates losing.
const maxFsyncLag = 50

// commit writes everything pending and answers waiters; the fsync is
// immediate when a synchronous append is waiting on it, lagged (bounded
// by maxFsyncLag) when the batch holds only asynchronous records.
func (j *Journal) commit() { j.commitWith(false) }

func (j *Journal) commitWith(force bool) {
	j.mu.Lock()
	j.drainMarksLocked()
	if j.pending.Len() == 0 && len(j.waiters) == 0 && !force {
		j.mu.Unlock()
		return
	}
	buf := j.pending.B
	j.pending.B = j.spare[:0]
	waiters := j.waiters
	j.waiters = nil
	j.mu.Unlock()

	var err error
	if len(buf) > 0 || force {
		j.io.Lock()
		if len(buf) > 0 {
			if _, err = j.f.Write(buf); err == nil {
				j.size += int64(len(buf))
				j.unsynced += int64(len(buf))
				j.lagTicks++
			}
		}
		if err == nil && j.unsynced > 0 {
			if force || len(waiters) > 0 || j.lagTicks >= maxFsyncLag {
				if err = j.f.Sync(); err == nil {
					j.fsyncs.Add(1)
					j.unsynced = 0
					j.lagTicks = 0
				}
			}
		}
		j.io.Unlock()
	}
	j.spare = buf[:0]
	if err != nil {
		j.lastErr.Store(err)
		j.logf("journal: commit failed: %v", err)
	}
	for _, ch := range waiters {
		ch <- err
	}
}

// --- compaction --------------------------------------------------------------

// snapshotRecords emits the canonical record sequence for st, sorted so
// the output is deterministic.
func snapshotRecords(st *State, emit func(*record) error) error {
	if err := emit(&record{
		kind:    recFloors,
		maxSess: st.MaxSession, maxHandle: st.MaxHandle, maxSub: st.MaxSub, maxRUC: st.MaxRUC,
	}); err != nil {
		return err
	}
	for _, sess := range sortedKeys(st.Sessions) {
		ss := st.Sessions[sess]
		if err := emit(&record{kind: recGrant, sess: sess, id: ss.Token}); err != nil {
			return err
		}
		if ss.Epoch != 0 {
			if err := emit(&record{kind: recEpoch, sess: sess, epoch: ss.Epoch}); err != nil {
				return err
			}
		}
		if ss.RecvSeq != 0 {
			if err := emit(&record{kind: recMark, sess: sess, seq: ss.RecvSeq}); err != nil {
				return err
			}
		}
	}
	for _, id := range sortedKeys(st.Handles) {
		h := st.Handles[id]
		if err := emit(&record{kind: recMint, id: h.ID, tag: h.Tag, name: h.Class, version: h.Version, sess: h.Session}); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(st.Names))
	for name := range st.Names {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := emit(&record{kind: recName, name: name, id: st.Names[name]}); err != nil {
			return err
		}
	}
	for _, id := range sortedKeys(st.Subs) {
		sub := st.Subs[id]
		if err := emit(&record{kind: recSub, id: sub.ID, key: sub.Key, name: sub.Topic, procID: sub.ProcID, sess: sub.Session}); err != nil {
			return err
		}
	}
	for _, id := range sortedKeys(st.RUCs) {
		e := st.RUCs[id]
		if err := emit(&record{kind: recRUC, id: e.ID, procID: e.ProcID, sess: e.Session}); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys[V any](m map[uint64]*V) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Compact folds the journal into a snapshot of its live state: the
// canonical records are written to a temporary file, fsynced, and
// renamed over the log. Records appended during the snapshot write are
// already folded into the state being snapshotted (appends fold before
// they commit), so nothing is lost; pending bytes are simply dropped in
// favor of the snapshot that covers them.
func (j *Journal) Compact() error {
	j.io.Lock()
	defer j.io.Unlock()

	// Freeze a snapshot buffer under mu: drain marks, encode the state,
	// and claim the waiters whose records the snapshot now covers.
	var buf xdr.Buffer
	var enc xdr.Stream
	var hdr [12]byte
	copy(hdr[:], magic)
	binary.BigEndian.PutUint32(hdr[8:], formatVersion)
	buf.B = append(buf.B, hdr[:]...)

	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return ErrClosed
	}
	j.drainMarksLocked()
	var scratch xdr.Buffer
	err := snapshotRecords(j.state, func(r *record) error {
		scratch.Reset()
		enc.ResetEncode(&scratch)
		if err := r.bundle(&enc); err != nil {
			return err
		}
		var frame [8]byte
		binary.BigEndian.PutUint32(frame[0:4], uint32(len(scratch.B)))
		binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(scratch.B))
		buf.B = append(buf.B, frame[:]...)
		buf.B = append(buf.B, scratch.B...)
		return nil
	})
	j.pending.Reset()
	waiters := j.waiters
	j.waiters = nil
	j.mu.Unlock()

	finish := func(err error) error {
		for _, ch := range waiters {
			ch <- err
		}
		return err
	}
	if err != nil {
		return finish(fmt.Errorf("journal: encoding snapshot: %w", err))
	}

	tmpPath := j.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return finish(fmt.Errorf("journal: %w", err))
	}
	if _, err := tmp.Write(buf.B); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return finish(fmt.Errorf("journal: writing snapshot: %w", err))
	}
	if err := os.Rename(tmpPath, j.path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return finish(fmt.Errorf("journal: installing snapshot: %w", err))
	}
	// Make the rename itself durable before retiring the old file.
	if dir, derr := os.Open(filepath.Dir(j.path)); derr == nil {
		dir.Sync()
		dir.Close()
	}
	old := j.f
	j.f = tmp
	j.size = int64(len(buf.B))
	j.unsynced = 0 // the snapshot is already fsynced; the old file's lag died with it
	j.lagTicks = 0
	old.Close()
	j.compactions.Add(1)
	return finish(nil)
}

// --- lifecycle ---------------------------------------------------------------

// Close drains pending records (one final commit) and closes the file.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.mu.Unlock()
	close(j.done)
	j.closedWg.Wait()
	j.io.Lock()
	defer j.io.Unlock()
	err, _ := j.lastErr.Load().(error)
	if cerr := j.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if j.lock != nil {
		j.lock.Close() // releases the flock; the next Open may proceed
	}
	return err
}

// Stats snapshots the journal's I/O counters.
func (j *Journal) Stats() Stats {
	return Stats{
		Appends:     j.appends.Load(),
		SyncAppends: j.syncAppends.Load(),
		Fsyncs:      j.fsyncs.Load(),
		Compactions: j.compactions.Load(),
		SizeBytes:   j.sizeNow(),
	}
}

// Path returns the journal file's path (diagnostics, tests).
func (j *Journal) Path() string { return j.path }
