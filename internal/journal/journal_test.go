package journal

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testOpts() Options {
	return Options{
		Log:              func(string, ...any) {},
		CommitInterval:   time.Millisecond,
		CompactThreshold: -1, // explicit Compact() only, unless a test overrides
	}
}

func mustOpen(t *testing.T, dir string, opts Options) (*Journal, *State) {
	t.Helper()
	j, st, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, st
}

// populate writes one record of every kind through the public API.
func populate(t *testing.T, j *Journal) {
	t.Helper()
	for _, err := range []error{
		j.Grant(1, 0xfeedface),
		j.EpochBump(1, 3),
		j.Grant(2, 0xdeadbeef),
		j.Mint(10, 0xaaa, "counter", 1, 1),
		j.Mint(11, 0xbbb, "screen", 2, 0),
		j.BindName("screen", 11),
		j.Subscribe(5, 5, "ticks", 77, 1),
		j.Subscribe(6, 42, "ticks", 77, 2),
		j.BindRUC(9, 88, 1),
		j.Mint(12, 0xccc, "window", 1, 2),
		j.Revoke(12),
		j.Subscribe(7, 7, "frames", 78, 2),
		j.Unsubscribe("frames", 7, 7),
		j.EndSession(2),
	} {
		if err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	j.Mark(1, 40)
	j.Mark(1, 55) // coalesces over the prior mark
}

// checkState asserts the fold of populate's records.
func checkState(t *testing.T, st *State) {
	t.Helper()
	if len(st.Sessions) != 1 {
		t.Fatalf("sessions = %d, want 1 (session 2 ended)", len(st.Sessions))
	}
	s1 := st.Sessions[1]
	if s1 == nil || s1.Token != 0xfeedface || s1.Epoch != 3 || s1.RecvSeq != 55 {
		t.Fatalf("session 1 = %+v, want token feedface epoch 3 recvseq 55", s1)
	}
	if len(st.Handles) != 2 {
		t.Fatalf("handles = %d, want 2 (12 revoked)", len(st.Handles))
	}
	if h := st.Handles[10]; h == nil || h.Tag != 0xaaa || h.Class != "counter" || h.Version != 1 || h.Session != 1 {
		t.Fatalf("handle 10 = %+v", h)
	}
	if h := st.Handles[11]; h == nil || h.Tag != 0xbbb || h.Class != "screen" {
		t.Fatalf("handle 11 = %+v", h)
	}
	if st.Names["screen"] != 11 {
		t.Fatalf("names = %v, want screen->11", st.Names)
	}
	// Sub 6 died with session 2; sub 7 was unsubscribed; sub 5 survives.
	if len(st.Subs) != 1 {
		t.Fatalf("subs = %v, want only id 5", st.Subs)
	}
	if sub := st.Subs[5]; sub == nil || sub.Topic != "ticks" || sub.ProcID != 77 || sub.Session != 1 {
		t.Fatalf("sub 5 = %+v", sub)
	}
	if len(st.RUCs) != 1 || st.RUCs[9] == nil || st.RUCs[9].ProcID != 88 {
		t.Fatalf("rucs = %v, want only id 9", st.RUCs)
	}
	// Floors remember the dead: session 2, handle 12, subs 6 and 7.
	if st.MaxSession != 2 || st.MaxHandle != 12 || st.MaxSub != 7 || st.MaxRUC != 9 {
		t.Fatalf("floors = %d/%d/%d/%d, want 2/12/7/9",
			st.MaxSession, st.MaxHandle, st.MaxSub, st.MaxRUC)
	}
}

// TestJournalRoundTrip writes every record kind, reopens, and checks the
// recovered fold matches.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, st := mustOpen(t, dir, testOpts())
	if len(st.Sessions)+len(st.Handles)+len(st.Subs) != 0 || st.Truncated {
		t.Fatalf("fresh journal state not empty: %+v", st)
	}
	populate(t, j)
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, st2 := mustOpen(t, dir, testOpts())
	defer j2.Close()
	if st2.Truncated {
		t.Fatal("clean close flagged as truncated")
	}
	checkState(t, st2)
}

// TestJournalTornTail corrupts the file mid-record (the signature of a
// crash during a write) and checks reopen recovers to the last complete
// record, truncates the tail, and flags it.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, testOpts())
	if err := j.Grant(1, 111); err != nil {
		t.Fatal(err)
	}
	if err := j.Mint(10, 0xaaa, "counter", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "clam.journal")
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Cut at every byte offset inside the last record: a torn tail of
	// any length must recover to exactly the first record.
	info, _ := os.Stat(path)
	full := info.Size()
	// Recompute where the mint record starts: reopen cleanly, note size
	// after just the grant.
	grantOnly := t.TempDir()
	jg, _ := mustOpen(t, grantOnly, testOpts())
	if err := jg.Grant(1, 111); err != nil {
		t.Fatal(err)
	}
	jg.Close()
	ginfo, _ := os.Stat(filepath.Join(grantOnly, "clam.journal"))
	mintStart := ginfo.Size()

	for cut := mintStart + 1; cut < full; cut += 7 {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, st := mustOpen(t, dir, testOpts())
		if !st.Truncated {
			t.Fatalf("cut at %d: torn tail not flagged", cut)
		}
		if st.Sessions[1] == nil || st.Sessions[1].Token != 111 {
			t.Fatalf("cut at %d: grant lost: %+v", cut, st.Sessions)
		}
		if len(st.Handles) != 0 {
			t.Fatalf("cut at %d: torn mint partially applied: %+v", cut, st.Handles)
		}
		// The truncated journal must accept new appends.
		if err := j2.Mint(20, 0xbbb, "window", 1, 1); err != nil {
			t.Fatalf("cut at %d: append after truncation: %v", cut, err)
		}
		j2.Close()
		j3, st3 := mustOpen(t, dir, testOpts())
		if st3.Handles[20] == nil {
			t.Fatalf("cut at %d: post-truncation append lost", cut)
		}
		j3.Close()
	}

	// A flipped bit (bad CRC, length intact) gets the same treatment.
	corrupt := append([]byte(nil), whole...)
	corrupt[len(corrupt)-1] ^= 0x40
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	j4, st4 := mustOpen(t, dir, testOpts())
	defer j4.Close()
	if !st4.Truncated || len(st4.Handles) != 0 {
		t.Fatalf("bit flip: truncated=%v handles=%v, want truncated with mint dropped",
			st4.Truncated, st4.Handles)
	}
}

// TestJournalDoubleRestart journals, recovers, journals more, recovers
// again: the journal of a journal-recovered server must fold cleanly.
func TestJournalDoubleRestart(t *testing.T) {
	dir := t.TempDir()
	j1, _ := mustOpen(t, dir, testOpts())
	populate(t, j1)
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2, st2 := mustOpen(t, dir, testOpts())
	checkState(t, st2)
	// Second incarnation keeps working: resume bumps the epoch, new
	// session arrives, marks advance.
	if err := j2.EpochBump(1, 4); err != nil {
		t.Fatal(err)
	}
	if err := j2.Grant(3, 0xabcd); err != nil {
		t.Fatal(err)
	}
	j2.Mark(1, 90)
	if err := j2.Mint(13, 0xddd, "framer", 1, 3); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	_, st3 := func() (*Journal, *State) {
		j, st := mustOpen(t, dir, testOpts())
		j.Close()
		return j, st
	}()
	if s1 := st3.Sessions[1]; s1 == nil || s1.Epoch != 4 || s1.RecvSeq != 90 {
		t.Fatalf("session 1 after double restart = %+v, want epoch 4 recvseq 90", s1)
	}
	if s3 := st3.Sessions[3]; s3 == nil || s3.Token != 0xabcd {
		t.Fatalf("session 3 = %+v", s3)
	}
	if st3.Handles[13] == nil || st3.MaxHandle != 13 {
		t.Fatalf("handle 13 = %+v max %d", st3.Handles[13], st3.MaxHandle)
	}
	if st3.MaxSession != 3 {
		t.Fatalf("MaxSession = %d, want 3", st3.MaxSession)
	}
}

// TestJournalCompaction proves a snapshot cycle bounds growth: the live
// state survives, dead records are gone, and floors are preserved.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, testOpts())
	populate(t, j)

	// Churn: mint+revoke in a loop so the log grows with dead records.
	for i := uint64(0); i < 500; i++ {
		if err := j.Mint(100+i, i+1, "window", 1, 1); err != nil {
			t.Fatal(err)
		}
		if err := j.Revoke(100 + i); err != nil {
			t.Fatal(err)
		}
	}
	grown := j.Stats().SizeBytes
	if err := j.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	shrunk := j.Stats().SizeBytes
	if shrunk >= grown/4 {
		t.Fatalf("compaction barely shrank the log: %d -> %d bytes", grown, shrunk)
	}
	if j.Stats().Compactions != 1 {
		t.Fatalf("compactions = %d, want 1", j.Stats().Compactions)
	}
	// Appends after compaction land in the new file.
	if err := j.Mint(700, 0xeee, "assembler", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, st := mustOpen(t, dir, testOpts())
	defer j2.Close()
	checkState2 := func() {
		// populate's fold plus the churn floor and the post-compaction mint.
		if s1 := st.Sessions[1]; s1 == nil || s1.Token != 0xfeedface || s1.RecvSeq != 55 {
			t.Fatalf("session 1 = %+v", s1)
		}
		if st.Handles[10] == nil || st.Handles[11] == nil || st.Handles[700] == nil {
			t.Fatalf("handles = %v, want 10, 11, 700", st.Handles)
		}
		if len(st.Handles) != 3 {
			t.Fatalf("dead churn handles survived compaction: %d entries", len(st.Handles))
		}
		if st.MaxHandle != 700 {
			t.Fatalf("MaxHandle = %d, want 700", st.MaxHandle)
		}
		if st.Names["screen"] != 11 {
			t.Fatalf("names = %v", st.Names)
		}
		if st.MaxSession != 2 || st.MaxSub != 7 || st.MaxRUC != 9 {
			t.Fatalf("floors lost in compaction: %d/%d/%d", st.MaxSession, st.MaxSub, st.MaxRUC)
		}
	}
	checkState2()
}

// TestJournalAutoCompaction checks the committer compacts on its own
// once the log passes the threshold.
func TestJournalAutoCompaction(t *testing.T) {
	opts := testOpts()
	opts.CompactThreshold = 8 << 10
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, testOpts())
	j.Close()
	j, _ = mustOpen(t, dir, opts)
	defer j.Close()
	for i := uint64(0); i < 2000; i++ {
		if err := j.Mint(100+i, i+1, "window", 1, 1); err != nil {
			t.Fatal(err)
		}
		if err := j.Revoke(100 + i); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for j.Stats().Compactions == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if j.Stats().Compactions == 0 {
		t.Fatal("auto-compaction never fired past the threshold")
	}
	if got := j.Stats().SizeBytes; got > 16<<10 {
		t.Fatalf("log not bounded after auto-compaction: %d bytes", got)
	}
}

// TestJournalMarksCoalesce checks the async mark path folds to the max
// without a record per call.
func TestJournalMarksCoalesce(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, testOpts())
	for seq := uint64(1); seq <= 10_000; seq++ {
		j.Mark(7, seq)
	}
	// Marks ride group commits, so far fewer appends than Mark calls.
	j.Grant(7, 1) // force at least one commit cycle after the marks
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if a := j.Stats().Appends; a > 100 {
		t.Fatalf("marks not coalesced: %d appends for 10k Mark calls", a)
	}
	j2, st := mustOpen(t, dir, testOpts())
	defer j2.Close()
	if st.Sessions[7] == nil || st.Sessions[7].RecvSeq != 10_000 {
		t.Fatalf("session 7 = %+v, want recvseq 10000", st.Sessions[7])
	}
}
