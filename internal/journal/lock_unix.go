//go:build unix

package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// acquireDirLock takes an exclusive, non-blocking flock on the journal
// directory's lock file. flock is advisory but exactly right here: it is
// released by the kernel when the holding process dies — SIGKILL
// included — so a crashed server never blocks its restarted successor,
// while a second live server on the same directory is refused before it
// can write a single interleaved record.
func acquireDirLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "clam.journal.lock"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: %s is in use by another server process (flock: %w)", dir, err)
	}
	return f, nil
}
