// Package upcall implements CLAM's upcall registration and dispatch
// mechanism (ICDCS 1988, §4.1).
//
// "Registration involves informing a lower level object how to call a
// higher level object when an event occurs. The lower level object
// provides the upper level object with a registration procedure to call.
// When its registration procedure is called, a lower level object stores
// the information it receives in its own state. When an event occurs that
// requires an upcall to be made, the lower level object uses this stored
// information to determine which higher level object should receive the
// call. It is possible that zero or more higher layers may be registered
// to receive the upcall. If there are no higher layers interested in the
// event, then the lower level object decides what to do with the event.
// For example, it may queue up the event for later use or may throw it
// away."
//
// A Registry is the state a lower-level object keeps. Registered
// procedures are plain Go funcs; when the upper layer lives in another
// address space, the func is a RUC proxy (internal/ruc) and the lower
// layer cannot tell the difference — which is the whole point.
//
// Each layer given an event may map it, queue it, discard it, or pass it
// up (§1): mapping and passing up happen inside handlers; queueing and
// discarding are the Registry's no-handler policies.
package upcall

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
)

// Policy says what a lower-level object does with an event no higher layer
// has registered for. Discard and Queue are the paper's two options
// (§4.1); DropOldest and Block are the robustness layer's graceful-
// degradation variants for bounded queues under sustained overload.
type Policy int

const (
	// Discard throws unclaimed events away.
	Discard Policy = iota + 1
	// Queue keeps unclaimed events for later retrieval ("it may queue up
	// the event for later use"); posting to a full queue is an error.
	Queue
	// DropOldest keeps unclaimed events like Queue, but a full queue
	// evicts its oldest event instead of rejecting the new one — fresh
	// events are worth more than stale ones under overload.
	DropOldest
	// Block keeps unclaimed events like Queue, but a Post against a full
	// queue waits until a consumer drains the queue or a handler
	// registers — backpressure instead of loss. Use only when some other
	// goroutine is guaranteed to Drain, Replay or Register.
	Block
)

// Registration errors.
var (
	ErrNotFunc   = errors.New("upcall: registered procedure is not a func")
	ErrQueueFull = errors.New("upcall: event queue full")
	ErrBadArgs   = errors.New("upcall: arguments do not match registered procedure")
)

// DefaultMaxQueue bounds each event queue unless overridden.
const DefaultMaxQueue = 1024

// Event is a queued occurrence.
type Event struct {
	Name string
	Args []any
}

type registration struct {
	id uint64
	fn reflect.Value
}

// Registry stores upcall registrations for one lower-level object. The
// zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	cond     *sync.Cond // signals Block-policy waiters; lazily nil until needed
	slots    map[string][]registration
	queues   map[string][]Event
	policy   Policy
	maxQueue int
	nextID   uint64
	dropped  uint64 // events lost to Discard or DropOldest eviction
}

// Option configures a Registry.
type Option func(*Registry)

// WithPolicy sets the no-handler policy (default Discard).
func WithPolicy(p Policy) Option {
	return func(r *Registry) { r.policy = p }
}

// WithMaxQueue bounds each event queue (default DefaultMaxQueue).
func WithMaxQueue(n int) Option {
	return func(r *Registry) { r.maxQueue = n }
}

// NewRegistry returns an empty registry.
func NewRegistry(opts ...Option) *Registry {
	r := &Registry{
		slots:    make(map[string][]registration),
		queues:   make(map[string][]Event),
		policy:   Discard,
		maxQueue: DefaultMaxQueue,
	}
	r.cond = sync.NewCond(&r.mu)
	for _, o := range opts {
		o(r)
	}
	return r
}

// Register stores fn as a receiver for the named event — the paper's
// postinput-style registration procedure. fn must be a func; its
// parameters define what Post may deliver, and the types are checked at
// delivery, the run-time analogue of §4.1's compile-time typechecking of
// registration parameters. The returned id can be passed to Unregister.
func (r *Registry) Register(event string, fn any) (uint64, error) {
	v := reflect.ValueOf(fn)
	if !v.IsValid() || v.Kind() != reflect.Func || v.IsNil() {
		return 0, fmt.Errorf("%w: %T", ErrNotFunc, fn)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	r.slots[event] = append(r.slots[event], registration{id: r.nextID, fn: v})
	r.cond.Broadcast() // Block-policy posters may now deliver instead
	return r.nextID, nil
}

// Unregister removes a registration, reporting whether it existed.
func (r *Registry) Unregister(event string, id uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	regs := r.slots[event]
	for i, g := range regs {
		if g.id == id {
			r.slots[event] = append(regs[:i:i], regs[i+1:]...)
			return true
		}
	}
	return false
}

// Handlers reports how many procedures are registered for event.
func (r *Registry) Handlers(event string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.slots[event])
}

// Post makes an upcall for event to every registered procedure, in
// registration order, and reports how many received it. "Events would be
// processed quickly, since upcalls are basically procedure calls" (§2.1):
// each delivery is a direct call of fn — local funcs run inline and RUC
// proxies cross to the client, indistinguishably.
//
// With no registered handler, the event is queued or discarded per the
// registry's policy and delivered count is 0.
func (r *Registry) Post(event string, args ...any) (int, error) {
	r.mu.Lock()
	for {
		if regs := r.slots[event]; len(regs) > 0 {
			rc := append([]registration(nil), regs...)
			r.mu.Unlock()
			// Deliver outside the lock: handlers may re-register,
			// unregister, or post further events (pass the event up to
			// the next layer).
			for _, g := range rc {
				if err := call(g.fn, args); err != nil {
					return 0, err
				}
			}
			return len(rc), nil
		}
		switch r.policy {
		case Queue:
			q := r.queues[event]
			if len(q) >= r.maxQueue {
				r.mu.Unlock()
				return 0, fmt.Errorf("%w: %q at %d", ErrQueueFull, event, r.maxQueue)
			}
			r.queues[event] = append(q, Event{Name: event, Args: args})
			r.mu.Unlock()
			return 0, nil
		case DropOldest:
			q := r.queues[event]
			if len(q) >= r.maxQueue && len(q) > 0 {
				q = append(q[:0], q[1:]...)
				r.dropped++
			}
			r.queues[event] = append(q, Event{Name: event, Args: args})
			r.mu.Unlock()
			return 0, nil
		case Block:
			if len(r.queues[event]) < r.maxQueue {
				r.queues[event] = append(r.queues[event], Event{Name: event, Args: args})
				r.mu.Unlock()
				return 0, nil
			}
			// Full: wait for a Drain/Replay/Register, then re-evaluate —
			// a handler may have appeared, making this a delivery.
			r.cond.Wait()
		default: // Discard
			r.dropped++
			r.mu.Unlock()
			return 0, nil
		}
	}
}

// ConvertArgs checks loosely typed arguments against the parameters of
// func type ft and returns them as call-ready values, applying the same
// conversions Post applies before invoking a handler: nil becomes the
// zero value, exact and assignable types pass through, and numeric
// widths convert within their kind family. It is the run-time analogue
// of §4.1's compile-time typechecking of registration parameters, shared
// by every layer that turns event payloads into upcall arguments.
func ConvertArgs(ft reflect.Type, args []any) ([]reflect.Value, error) {
	if ft == nil || ft.Kind() != reflect.Func {
		return nil, fmt.Errorf("%w: %v is not a func type", ErrNotFunc, ft)
	}
	if ft.NumIn() != len(args) {
		return nil, fmt.Errorf("%w: takes %d, got %d", ErrBadArgs, ft.NumIn(), len(args))
	}
	in := make([]reflect.Value, len(args))
	for i, a := range args {
		av := reflect.ValueOf(a)
		pt := ft.In(i)
		switch {
		case !av.IsValid():
			in[i] = reflect.Zero(pt)
		case av.Type() == pt:
			in[i] = av
		case av.Type().ConvertibleTo(pt) && compatibleKinds(av.Kind(), pt.Kind()):
			in[i] = av.Convert(pt)
		case av.Type().AssignableTo(pt):
			in[i] = av
		default:
			return nil, fmt.Errorf("%w: argument %d is %s, want %s", ErrBadArgs, i, av.Type(), pt)
		}
	}
	return in, nil
}

func call(fn reflect.Value, args []any) error {
	in, err := ConvertArgs(fn.Type(), args)
	if err != nil {
		return err
	}
	out := fn.Call(in)
	// A trailing error result propagates to the poster.
	if n := len(out); n > 0 {
		if e, ok := out[n-1].Interface().(error); ok && e != nil {
			return e
		}
	}
	return nil
}

// compatibleKinds permits numeric width conversions but not cross-family
// conversions that ConvertibleTo would allow (e.g. int→string).
func compatibleKinds(a, b reflect.Kind) bool {
	family := func(k reflect.Kind) int {
		switch k {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			return 1
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			return 2
		case reflect.Float32, reflect.Float64:
			return 3
		default:
			return 0
		}
	}
	fa, fb := family(a), family(b)
	return fa != 0 && fa == fb
}

// Drain returns and clears the queued events for event.
func (r *Registry) Drain(event string) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	q := r.queues[event]
	delete(r.queues, event)
	r.cond.Broadcast() // Block-policy posters may now enqueue
	return q
}

// Dropped reports how many events the registry has thrown away: events
// with no handler under Discard, plus queue evictions under DropOldest.
func (r *Registry) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Queued reports how many events are queued for event.
func (r *Registry) Queued(event string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queues[event])
}

// Replay posts every queued event for event to the now-registered
// handlers, in arrival order. Events that again find no handler follow
// the registry policy.
func (r *Registry) Replay(event string) (int, error) {
	delivered := 0
	for _, e := range r.Drain(event) {
		n, err := r.Post(e.Name, e.Args...)
		if err != nil {
			return delivered, err
		}
		delivered += n
	}
	return delivered, nil
}
