package upcall

import (
	"sync"
	"testing"
	"time"
)

// Graceful-degradation policies: bounded queues under overload.

func TestDropOldestEvictsFront(t *testing.T) {
	r := NewRegistry(WithPolicy(DropOldest), WithMaxQueue(3))
	for i := 0; i < 5; i++ {
		if _, err := r.Post("ev", i); err != nil {
			t.Fatalf("post %d: %v", i, err)
		}
	}
	if got := r.Queued("ev"); got != 3 {
		t.Fatalf("queued = %d, want 3", got)
	}
	q := r.Drain("ev")
	// Events 0 and 1 were evicted; 2, 3, 4 remain in order.
	for i, want := range []int{2, 3, 4} {
		if q[i].Args[0].(int) != want {
			t.Errorf("q[%d] = %v, want %d", i, q[i].Args[0], want)
		}
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", r.Dropped())
	}
}

func TestDiscardCountsDropped(t *testing.T) {
	r := NewRegistry() // Discard is the default
	r.Post("ev", 1)
	r.Post("ev", 2)
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", r.Dropped())
	}
}

func TestBlockPolicyUnblocksOnDrain(t *testing.T) {
	r := NewRegistry(WithPolicy(Block), WithMaxQueue(1))
	if _, err := r.Post("ev", 1); err != nil {
		t.Fatal(err)
	}
	// Queue is full: the next Post must block until a Drain.
	posted := make(chan struct{})
	go func() {
		r.Post("ev", 2)
		close(posted)
	}()
	select {
	case <-posted:
		t.Fatal("Post against a full Block queue returned immediately")
	case <-time.After(50 * time.Millisecond):
	}
	if q := r.Drain("ev"); len(q) != 1 || q[0].Args[0].(int) != 1 {
		t.Fatalf("drain = %v", q)
	}
	select {
	case <-posted:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Post never resumed after Drain")
	}
	if q := r.Drain("ev"); len(q) != 1 || q[0].Args[0].(int) != 2 {
		t.Fatalf("second drain = %v", q)
	}
}

func TestBlockPolicyDeliversWhenHandlerRegisters(t *testing.T) {
	r := NewRegistry(WithPolicy(Block), WithMaxQueue(1))
	r.Post("ev", 1) // fills the queue

	var mu sync.Mutex
	var got []int
	delivered := make(chan struct{})
	go func() {
		n, err := r.Post("ev", 2) // blocks: queue full
		if err != nil {
			t.Errorf("blocked post: %v", err)
		}
		if n != 1 {
			t.Errorf("blocked post delivered to %d handlers, want 1", n)
		}
		close(delivered)
	}()
	time.Sleep(50 * time.Millisecond)
	// Registering a handler must wake the blocked poster, which then
	// delivers directly instead of queueing.
	if _, err := r.Register("ev", func(v int) {
		mu.Lock()
		got = append(got, v)
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-delivered:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked Post never delivered after Register")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("handler got %v, want [2]", got)
	}
}
