package upcall

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestRegisterAndPost(t *testing.T) {
	r := NewRegistry()
	var got []int32
	if _, err := r.Register("mouse", func(x int32) { got = append(got, x) }); err != nil {
		t.Fatal(err)
	}
	n, err := r.Post("mouse", int32(5))
	if err != nil || n != 1 {
		t.Fatalf("Post: n=%d err=%v", n, err)
	}
	if len(got) != 1 || got[0] != 5 {
		t.Errorf("got %v", got)
	}
}

func TestRegisterRejectsNonFunc(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Register("e", 42); !errors.Is(err, ErrNotFunc) {
		t.Errorf("err = %v", err)
	}
	var nilFn func()
	if _, err := r.Register("e", nilFn); !errors.Is(err, ErrNotFunc) {
		t.Errorf("nil func: err = %v", err)
	}
	if _, err := r.Register("e", nil); !errors.Is(err, ErrNotFunc) {
		t.Errorf("nil: err = %v", err)
	}
}

func TestMultipleHandlersInOrder(t *testing.T) {
	r := NewRegistry()
	var order []string
	r.Register("e", func() { order = append(order, "first") })
	r.Register("e", func() { order = append(order, "second") })
	n, err := r.Post("e")
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Errorf("order = %v", order)
	}
}

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	calls := 0
	id, _ := r.Register("e", func() { calls++ })
	if !r.Unregister("e", id) {
		t.Fatal("unregister failed")
	}
	if r.Unregister("e", id) {
		t.Error("double unregister succeeded")
	}
	r.Post("e")
	if calls != 0 {
		t.Errorf("handler ran after unregister")
	}
	if r.Handlers("e") != 0 {
		t.Errorf("Handlers = %d", r.Handlers("e"))
	}
}

func TestDiscardPolicy(t *testing.T) {
	r := NewRegistry() // default Discard
	n, err := r.Post("nobody", 1)
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if r.Queued("nobody") != 0 {
		t.Error("discard policy queued an event")
	}
}

func TestQueuePolicyAndReplay(t *testing.T) {
	r := NewRegistry(WithPolicy(Queue))
	r.Post("mouse", int32(1))
	r.Post("mouse", int32(2))
	if r.Queued("mouse") != 2 {
		t.Fatalf("queued = %d", r.Queued("mouse"))
	}
	var got []int32
	r.Register("mouse", func(x int32) { got = append(got, x) })
	n, err := r.Replay("mouse")
	if err != nil || n != 2 {
		t.Fatalf("replay: n=%d err=%v", n, err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("replay order: %v", got)
	}
	if r.Queued("mouse") != 0 {
		t.Error("queue not drained by replay")
	}
}

func TestQueueBounded(t *testing.T) {
	r := NewRegistry(WithPolicy(Queue), WithMaxQueue(2))
	r.Post("e")
	r.Post("e")
	if _, err := r.Post("e"); !errors.Is(err, ErrQueueFull) {
		t.Errorf("err = %v, want ErrQueueFull", err)
	}
}

func TestDrain(t *testing.T) {
	r := NewRegistry(WithPolicy(Queue))
	r.Post("e", "a")
	r.Post("e", "b")
	evs := r.Drain("e")
	if len(evs) != 2 || evs[0].Args[0] != "a" || evs[1].Args[0] != "b" {
		t.Errorf("drained %v", evs)
	}
	if len(r.Drain("e")) != 0 {
		t.Error("second drain returned events")
	}
}

func TestArgumentTypeChecking(t *testing.T) {
	r := NewRegistry()
	r.Register("e", func(x int32) {})
	if _, err := r.Post("e", "wrong"); !errors.Is(err, ErrBadArgs) {
		t.Errorf("err = %v, want ErrBadArgs", err)
	}
	if _, err := r.Post("e"); !errors.Is(err, ErrBadArgs) {
		t.Errorf("arity: err = %v", err)
	}
	if _, err := r.Post("e", int32(1), int32(2)); !errors.Is(err, ErrBadArgs) {
		t.Errorf("arity: err = %v", err)
	}
}

func TestNumericWidthConversion(t *testing.T) {
	r := NewRegistry()
	var got int64
	r.Register("e", func(x int64) { got = x })
	if _, err := r.Post("e", int32(7)); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("got %d", got)
	}
	// But int→string conversion, though Convertible in reflect terms,
	// must be rejected.
	r.Register("s", func(x string) {})
	if _, err := r.Post("s", 65); !errors.Is(err, ErrBadArgs) {
		t.Errorf("int→string: err = %v", err)
	}
}

func TestNilArgumentBecomesZero(t *testing.T) {
	r := NewRegistry()
	var got *int
	sentinel := 5
	got = &sentinel
	r.Register("e", func(p *int) { got = p })
	if _, err := r.Post("e", nil); err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Errorf("got %v, want nil", got)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	r := NewRegistry()
	boom := errors.New("layer failed")
	r.Register("e", func() error { return boom })
	if _, err := r.Post("e"); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestHandlerMayRegisterDuringDelivery(t *testing.T) {
	r := NewRegistry()
	nested := 0
	r.Register("e", func() {
		// Passing the event up: register a new layer mid-delivery.
		r.Register("e2", func() { nested++ })
		r.Post("e2")
	})
	if _, err := r.Post("e"); err != nil {
		t.Fatal(err)
	}
	if nested != 1 {
		t.Errorf("nested = %d", nested)
	}
}

// Layered propagation: each layer maps the event and passes it upward,
// the §2 input pipeline in miniature.
func TestLayeredPropagation(t *testing.T) {
	screen := NewRegistry()
	window := NewRegistry()
	var final []string

	// window layer registers with screen: maps raw coordinates to a name.
	screen.Register("raw", func(x, y int32) {
		if x > 10 {
			window.Post("win", fmt.Sprintf("click@%d,%d", x, y))
		}
		// else: the layer limits the asynchrony by dropping it
	})
	// application registers with window.
	window.Register("win", func(desc string) { final = append(final, desc) })

	screen.Post("raw", int32(20), int32(5))
	screen.Post("raw", int32(3), int32(3)) // filtered by the window layer
	if len(final) != 1 || final[0] != "click@20,5" {
		t.Errorf("final = %v", final)
	}
}

func TestConcurrentPosts(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	count := 0
	r.Register("e", func() {
		mu.Lock()
		count++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := r.Post("e"); err != nil {
				t.Errorf("post: %v", err)
			}
		}()
	}
	wg.Wait()
	if count != n {
		t.Errorf("count = %d", count)
	}
}
