// Package handle implements CLAM's object handles (ICDCS 1988, §3.5.1 and
// Figure 3.3).
//
// Object pointers never cross address spaces. When a pointer to a class
// instance leaves the server it is converted into a handle — "a capability
// for an object" containing an object identifier and a tag, "an arbitrary
// bit pattern for checking the validity of the handle". The server keeps,
// per object identifier, the class identifier, a version number, the tag,
// and the pointer to the object itself. When a client passes the handle
// back in, the tag in the table is compared with the tag in the handle and,
// only if they match, the real object's address is returned.
//
// The paper's three assumptions hold here too: each process has its own
// address space; objects are created dynamically; and an object pointer
// must be passed out of the server before a client attempts to pass it in
// (nil handles are special-cased).
package handle

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"

	"clam/internal/xdr"
)

// ID names an object within one server's handle table. ID 0 is reserved
// for the nil handle.
type ID uint64

// Tag is the arbitrary bit pattern a handle must present to prove it was
// minted by this table.
type Tag uint64

// Handle is the client-visible capability for a server object.
type Handle struct {
	ID  ID
	Tag Tag
}

// Nil is the handle for a nil object pointer, "handled specially" per the
// paper.
var Nil = Handle{}

// IsNil reports whether h denotes the nil object.
func (h Handle) IsNil() bool { return h == Nil }

// String formats the handle for diagnostics.
func (h Handle) String() string {
	if h.IsNil() {
		return "handle(nil)"
	}
	return fmt.Sprintf("handle(%d,%#x)", uint64(h.ID), uint64(h.Tag))
}

// Bundle bidirectionally transfers the handle on s.
func (h *Handle) Bundle(s *xdr.Stream) error {
	id := uint64(h.ID)
	tag := uint64(h.Tag)
	s.Uint64(&id)
	s.Uint64(&tag)
	if s.Op() == xdr.Decode && s.Err() == nil {
		h.ID = ID(id)
		h.Tag = Tag(tag)
	}
	return s.Err()
}

// Entry is what the server stores per object identifier (Figure 3.3): "a
// class identifier, a version number and the tag, and a pointer to the
// object itself".
type Entry struct {
	ClassID uint32
	Version uint32
	Tag     Tag
	Obj     any
}

// Lookup errors.
var (
	// ErrUnknown means the object identifier names no live entry.
	ErrUnknown = errors.New("handle: unknown object identifier")
	// ErrStale means the identifier exists but the tag does not match —
	// a forged or revoked capability.
	ErrStale = errors.New("handle: tag mismatch")
)

// Table maps handles to objects for one server. The zero value is not
// usable; call NewTable.
type Table struct {
	mu      sync.RWMutex
	entries map[ID]*Entry
	byObj   map[any]ID // object identity → existing handle, so re-exporting is stable
	next    ID
	rng     *rand.Rand
	minter  func() uint64 // optional tag source replacing rng (SetTagMinter)
}

// NewTable returns an empty handle table with an unpredictably seeded tag
// generator.
func NewTable() *Table {
	var seed [16]byte
	if _, err := cryptorand.Read(seed[:]); err != nil {
		// Fall back to a fixed seed; tags remain arbitrary bit patterns,
		// merely predictable, which only weakens forgery resistance.
		copy(seed[:], "clam-handle-seed")
	}
	return &Table{
		entries: make(map[ID]*Entry),
		byObj:   make(map[any]ID),
		rng: rand.New(rand.NewPCG(
			binary.LittleEndian.Uint64(seed[0:8]),
			binary.LittleEndian.Uint64(seed[8:16]),
		)),
	}
}

// Put registers obj (any pointer-like comparable value) and returns its
// handle. Registering the same object again returns the same handle, so an
// object passed out of the server twice compares equal on the client.
func (t *Table) Put(obj any, classID, version uint32) (Handle, error) {
	h, _, err := t.PutNew(obj, classID, version)
	return h, err
}

// PutNew is Put that additionally reports whether the handle was minted
// by this call (false when obj was already registered). Callers that
// journal mints use it to record each capability exactly once.
func (t *Table) PutNew(obj any, classID, version uint32) (Handle, bool, error) {
	if obj == nil {
		return Nil, false, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.byObj[obj]; ok {
		e := t.entries[id]
		return Handle{ID: id, Tag: e.Tag}, false, nil
	}
	t.next++
	id := t.next
	var tag Tag
	if t.minter != nil {
		tag = Tag(t.minter())
	} else {
		tag = Tag(t.rng.Uint64())
	}
	if tag == 0 {
		tag = 1 // tag 0 is reserved for the nil handle
	}
	t.entries[id] = &Entry{ClassID: classID, Version: version, Tag: tag, Obj: obj}
	t.byObj[obj] = id
	return Handle{ID: id, Tag: tag}, true, nil
}

// Restore installs obj under a previously minted handle, preserving its
// (ID, Tag) capability — journal recovery re-binding client-held handles
// to freshly re-created objects. If obj is already registered under
// another ID the byObj mapping keeps the existing one (later Puts keep
// returning it); the restored entry still validates the old capability.
// The id allocator is advanced past h.ID so new mints never collide.
func (t *Table) Restore(h Handle, classID, version uint32, obj any) {
	if h.IsNil() || obj == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries[h.ID] = &Entry{ClassID: classID, Version: version, Tag: h.Tag, Obj: obj}
	if _, ok := t.byObj[obj]; !ok {
		t.byObj[obj] = h.ID
	}
	if h.ID > t.next {
		t.next = h.ID
	}
}

// FloorID advances the id allocator so no future mint uses an identifier
// at or below id. Recovery calls it with the journaled maximum before
// any new handles are minted.
func (t *Table) FloorID(id ID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id > t.next {
		t.next = id
	}
}

// Lookup returns the handle registered for obj, if any.
func (t *Table) Lookup(obj any) (Handle, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.byObj[obj]
	if !ok {
		return Nil, false
	}
	return Handle{ID: id, Tag: t.entries[id].Tag}, true
}

// Get validates h and returns the object it names.
func (t *Table) Get(h Handle) (any, error) {
	e, err := t.Entry(h)
	if err != nil {
		return nil, err
	}
	return e.Obj, nil
}

// Entry validates h and returns a copy of its table entry.
func (t *Table) Entry(h Handle) (Entry, error) {
	if h.IsNil() {
		return Entry{}, fmt.Errorf("%w: nil handle", ErrUnknown)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	e, ok := t.entries[h.ID]
	if !ok {
		return Entry{}, fmt.Errorf("%w: id %d", ErrUnknown, uint64(h.ID))
	}
	if e.Tag != h.Tag {
		return Entry{}, fmt.Errorf("%w: id %d", ErrStale, uint64(h.ID))
	}
	return *e, nil
}

// Revoke removes h from the table, invalidating the capability. Passing a
// handle that fails validation is an error; revoking an already-revoked
// handle reports ErrUnknown.
func (t *Table) Revoke(h Handle) error {
	if h.IsNil() {
		return fmt.Errorf("%w: nil handle", ErrUnknown)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[h.ID]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrUnknown, uint64(h.ID))
	}
	if e.Tag != h.Tag {
		return fmt.Errorf("%w: id %d", ErrStale, uint64(h.ID))
	}
	delete(t.entries, h.ID)
	delete(t.byObj, e.Obj)
	return nil
}

// RevokeObj removes the entry for obj if one exists, reporting whether it
// did. Used when a class instance is destroyed server-side.
func (t *Table) RevokeObj(obj any) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, ok := t.byObj[obj]
	if !ok {
		return false
	}
	delete(t.entries, id)
	delete(t.byObj, obj)
	return true
}

// Len reports the number of live entries.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.entries)
}

// SetTagMinter replaces the table's random tag source with fn. Tags stay
// "an arbitrary bit pattern" (§3.5.1) to every consumer, but a minter can
// shape the pattern — a mesh member constrains new tags to the arc of the
// consistent-hash ring it owns, so a tag alone names its owning peer. A
// minter returning 0 falls back to tag 1 (the nil-handle reservation),
// like the random path. nil restores the default source.
func (t *Table) SetTagMinter(fn func() uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.minter = fn
}

// RevokeFunc removes every live entry whose object satisfies pred,
// reporting how many were revoked — bulk invalidation, e.g. every proxy
// handle riding a peer link that died.
func (t *Table) RevokeFunc(pred func(obj any) bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for id, e := range t.entries {
		if pred(e.Obj) {
			delete(t.entries, id)
			delete(t.byObj, e.Obj)
			n++
		}
	}
	return n
}

// CountFunc reports how many live entries hold objects satisfying pred —
// e.g. how many entries are proxies for another server's objects.
func (t *Table) CountFunc(pred func(obj any) bool) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, e := range t.entries {
		if pred(e.Obj) {
			n++
		}
	}
	return n
}
