package handle

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"clam/internal/xdr"
)

type widget struct{ n int }

func TestPutGetRoundTrip(t *testing.T) {
	tbl := NewTable()
	w := &widget{n: 1}
	h, err := tbl.Put(w, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.IsNil() {
		t.Fatal("Put returned nil handle")
	}
	got, err := tbl.Get(h)
	if err != nil {
		t.Fatal(err)
	}
	if got != w {
		t.Error("Get returned a different object")
	}
}

func TestPutIsStablePerObject(t *testing.T) {
	tbl := NewTable()
	w := &widget{}
	h1, _ := tbl.Put(w, 1, 1)
	h2, _ := tbl.Put(w, 1, 1)
	if h1 != h2 {
		t.Errorf("same object minted two handles: %v vs %v", h1, h2)
	}
	if tbl.Len() != 1 {
		t.Errorf("table has %d entries, want 1", tbl.Len())
	}
}

func TestDistinctObjectsDistinctHandles(t *testing.T) {
	tbl := NewTable()
	h1, _ := tbl.Put(&widget{}, 1, 1)
	h2, _ := tbl.Put(&widget{}, 1, 1)
	if h1.ID == h2.ID {
		t.Error("distinct objects share an id")
	}
}

func TestNilObject(t *testing.T) {
	tbl := NewTable()
	h, err := tbl.Put(nil, 1, 1)
	if err != nil || !h.IsNil() {
		t.Errorf("Put(nil) = %v, %v; want Nil handle", h, err)
	}
	if _, err := tbl.Get(Nil); !errors.Is(err, ErrUnknown) {
		t.Errorf("Get(Nil): err = %v", err)
	}
}

func TestForgedTagRejected(t *testing.T) {
	tbl := NewTable()
	h, _ := tbl.Put(&widget{}, 1, 1)
	forged := Handle{ID: h.ID, Tag: h.Tag ^ 1}
	if _, err := tbl.Get(forged); !errors.Is(err, ErrStale) {
		t.Errorf("forged tag: err = %v, want ErrStale", err)
	}
}

func TestUnknownIDRejected(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.Get(Handle{ID: 42, Tag: 1}); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown id: err = %v, want ErrUnknown", err)
	}
}

func TestEntryMetadata(t *testing.T) {
	tbl := NewTable()
	h, _ := tbl.Put(&widget{}, 7, 3)
	e, err := tbl.Entry(h)
	if err != nil {
		t.Fatal(err)
	}
	if e.ClassID != 7 || e.Version != 3 {
		t.Errorf("entry = %+v, want class 7 version 3", e)
	}
}

func TestRevoke(t *testing.T) {
	tbl := NewTable()
	w := &widget{}
	h, _ := tbl.Put(w, 1, 1)
	if err := tbl.Revoke(h); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Get(h); !errors.Is(err, ErrUnknown) {
		t.Errorf("revoked handle resolves: err = %v", err)
	}
	if err := tbl.Revoke(h); !errors.Is(err, ErrUnknown) {
		t.Errorf("double revoke: err = %v", err)
	}
	// After revocation the object may be re-registered with a new handle.
	h2, _ := tbl.Put(w, 1, 1)
	if h2 == h {
		t.Error("re-registration reused the revoked handle")
	}
}

func TestRevokeWithForgedTag(t *testing.T) {
	tbl := NewTable()
	h, _ := tbl.Put(&widget{}, 1, 1)
	if err := tbl.Revoke(Handle{ID: h.ID, Tag: h.Tag ^ 1}); !errors.Is(err, ErrStale) {
		t.Errorf("revoke with forged tag: err = %v, want ErrStale", err)
	}
	if _, err := tbl.Get(h); err != nil {
		t.Error("entry lost after failed revoke")
	}
}

func TestRevokeObj(t *testing.T) {
	tbl := NewTable()
	w := &widget{}
	tbl.Put(w, 1, 1)
	if !tbl.RevokeObj(w) {
		t.Error("RevokeObj found nothing")
	}
	if tbl.RevokeObj(w) {
		t.Error("second RevokeObj reported success")
	}
	if tbl.Len() != 0 {
		t.Errorf("table length %d after revoke", tbl.Len())
	}
}

func TestHandleBundleRoundTrip(t *testing.T) {
	want := Handle{ID: 5, Tag: 0xdeadbeefcafe}
	var buf bytes.Buffer
	h := want
	if err := h.Bundle(xdr.NewEncoder(&buf)); err != nil {
		t.Fatal(err)
	}
	var got Handle
	if err := got.Bundle(xdr.NewDecoder(&buf)); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip: got %v want %v", got, want)
	}
}

func TestHandleString(t *testing.T) {
	if Nil.String() != "handle(nil)" {
		t.Errorf("Nil.String() = %q", Nil.String())
	}
	h := Handle{ID: 3, Tag: 0xff}
	if !strings.Contains(h.String(), "3") || !strings.Contains(h.String(), "0xff") {
		t.Errorf("String() = %q", h.String())
	}
}

func TestConcurrentPutGet(t *testing.T) {
	tbl := NewTable()
	const n = 64
	var wg sync.WaitGroup
	handles := make([]Handle, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := tbl.Put(&widget{n: i}, 1, 1)
			if err != nil {
				t.Errorf("put: %v", err)
				return
			}
			handles[i] = h
			if _, err := tbl.Get(h); err != nil {
				t.Errorf("get: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if tbl.Len() != n {
		t.Errorf("table length %d, want %d", tbl.Len(), n)
	}
	seen := make(map[ID]bool)
	for _, h := range handles {
		if seen[h.ID] {
			t.Fatalf("duplicate id %d", h.ID)
		}
		seen[h.ID] = true
	}
}

// Property: a random tag other than the minted one never resolves — the
// capability is unforgeable up to guessing the 64-bit tag.
func TestQuickTagSoundness(t *testing.T) {
	tbl := NewTable()
	h, _ := tbl.Put(&widget{}, 1, 1)
	prop := func(guess uint64) bool {
		g := Handle{ID: h.ID, Tag: Tag(guess)}
		_, err := tbl.Get(g)
		if Tag(guess) == h.Tag {
			return err == nil
		}
		return errors.Is(err, ErrStale)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: handles bundle losslessly.
func TestQuickBundleRoundTrip(t *testing.T) {
	prop := func(id, tag uint64) bool {
		want := Handle{ID: ID(id), Tag: Tag(tag)}
		var buf bytes.Buffer
		h := want
		if h.Bundle(xdr.NewEncoder(&buf)) != nil {
			return false
		}
		var got Handle
		return got.Bundle(xdr.NewDecoder(&buf)) == nil && got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
