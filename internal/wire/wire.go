// Package wire provides the typed-message transport CLAM runs over: framed
// messages on reliable, in-order byte streams (ICDCS 1988, §3.4 and §4.4).
//
// The paper's design point is that multiplexing several conversations onto
// one UNIX stream is awkward without typed messages, so CLAM gives each
// communication channel its own stream: one per client for RPC requests and
// one per client for upcalls. This package supplies the framing both streams
// share, plus buffered writes so the RPC layer can batch several asynchronous
// calls into a single message exchange, and a simulated wide-area link used
// to reproduce the "different machines" rows of Figure 5.1 on one host.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// MsgType identifies the conversation a frame belongs to, replacing the
// "extra information to specify which conversation is currently active" the
// paper says untyped streams would require.
type MsgType uint8

// Message types. Hello messages pair a client's two streams into one
// session; Call/Reply carry RPC batches; Upcall/UpcallReply carry
// distributed upcalls; Load/LoadReply carry dynamic-loading requests; Sync
// forces a batch flush and round trip; Error reports server-detected faults;
// Ping/Pong are the liveness heartbeats either end may send on either
// stream — the paper's dual-stream protocol (§4.4) has no liveness story of
// its own, so heartbeats are the robustness layer's addition.
const (
	MsgHello MsgType = iota + 1
	MsgHelloReply
	MsgCall
	MsgReply
	MsgUpcall
	MsgUpcallReply
	MsgLoad
	MsgLoadReply
	MsgSync
	MsgSyncReply
	MsgError
	MsgBye
	MsgPing
	MsgPong
)

var msgTypeNames = map[MsgType]string{
	MsgHello:       "Hello",
	MsgHelloReply:  "HelloReply",
	MsgCall:        "Call",
	MsgReply:       "Reply",
	MsgUpcall:      "Upcall",
	MsgUpcallReply: "UpcallReply",
	MsgLoad:        "Load",
	MsgLoadReply:   "LoadReply",
	MsgSync:        "Sync",
	MsgSyncReply:   "SyncReply",
	MsgError:       "Error",
	MsgBye:         "Bye",
	MsgPing:        "Ping",
	MsgPong:        "Pong",
}

// String returns a readable name for the message type.
func (t MsgType) String() string {
	if s, ok := msgTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// MaxBody bounds a frame body so a corrupt or hostile peer cannot force an
// unbounded allocation.
const MaxBody = 64 << 20

// headerLen is the fixed frame prefix: 4 bytes magic+type, 8 bytes sequence
// number, 4 bytes body length.
const headerLen = 16

// magic guards against a foreign protocol talking to a CLAM port.
const magic = 0xC1A0

// Msg is one framed message. Seq correlates replies with requests: a reply
// carries the Seq of the message it answers.
type Msg struct {
	Type MsgType
	Seq  uint64
	Body []byte
}

// Frame errors.
var (
	ErrBadMagic = errors.New("wire: bad frame magic")
	ErrTooBig   = errors.New("wire: frame body exceeds limit")
	ErrClosed   = errors.New("wire: connection closed")
)

// Conn frames messages over a reliable, in-order byte stream. Writes are
// buffered until Flush so several messages — or one message assembled
// incrementally — cost a single kernel round trip, which is what makes the
// paper's call batching pay off. Reads and writes may proceed concurrently;
// writers are serialized with each other, as are readers.
type Conn struct {
	wmu    sync.Mutex
	bw     *bufio.Writer
	rmu    sync.Mutex
	br     *bufio.Reader
	c      net.Conn
	closed sync.Once
	// Frame counters are atomic: Stats must not contend with a reader
	// blocked in Recv, which holds rmu across the wait for data.
	sent     atomic.Uint64
	received atomic.Uint64
}

// NewConn wraps c in a framed connection.
func NewConn(c net.Conn) *Conn {
	return &Conn{
		bw: bufio.NewWriterSize(c, 64<<10),
		br: bufio.NewReaderSize(c, 64<<10),
		c:  c,
	}
}

// RemoteAddr reports the address of the peer.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// LocalAddr reports the local address.
func (c *Conn) LocalAddr() net.Addr { return c.c.LocalAddr() }

func putHeader(h []byte, t MsgType, seq uint64, n int) {
	binary.BigEndian.PutUint16(h[0:2], magic)
	h[2] = byte(t)
	h[3] = 0 // reserved
	binary.BigEndian.PutUint64(h[4:12], seq)
	binary.BigEndian.PutUint32(h[12:16], uint32(n))
}

// Write queues m on the connection without flushing. Use it to batch; pair
// with Flush. Safe for concurrent use.
func (c *Conn) Write(m *Msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.writeLocked(m)
}

func (c *Conn) writeLocked(m *Msg) error {
	if len(m.Body) > MaxBody {
		return fmt.Errorf("%w: %d bytes", ErrTooBig, len(m.Body))
	}
	var h [headerLen]byte
	putHeader(h[:], m.Type, m.Seq, len(m.Body))
	if _, err := c.bw.Write(h[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := c.bw.Write(m.Body); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	c.sent.Add(1)
	return nil
}

// Flush pushes all queued frames to the kernel.
func (c *Conn) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// Send writes m and flushes in one step.
func (c *Conn) Send(m *Msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.writeLocked(m); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// Recv blocks until the next frame arrives and returns it. The returned
// body is freshly allocated and owned by the caller.
func (c *Conn) Recv() (*Msg, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	var h [headerLen]byte
	if _, err := io.ReadFull(c.br, h[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
			errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	if binary.BigEndian.Uint16(h[0:2]) != magic {
		return nil, ErrBadMagic
	}
	n := binary.BigEndian.Uint32(h[12:16])
	if n > MaxBody {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooBig, n)
	}
	m := &Msg{
		Type: MsgType(h[2]),
		Seq:  binary.BigEndian.Uint64(h[4:12]),
		Body: make([]byte, n),
	}
	if _, err := io.ReadFull(c.br, m.Body); err != nil {
		return nil, fmt.Errorf("wire: read body: %w", err)
	}
	c.received.Add(1)
	return m, nil
}

// Stats reports the number of frames sent and received so far. The two
// counters are sampled independently, so a snapshot taken during heavy
// traffic may be slightly stale.
func (c *Conn) Stats() (sent, received uint64) {
	return c.sent.Load(), c.received.Load()
}

// Close tears the connection down. It is safe to call more than once.
func (c *Conn) Close() error {
	var err error
	c.closed.Do(func() { err = c.c.Close() })
	return err
}

// Pipe returns a connected pair of in-memory framed connections, useful for
// tests and for measuring protocol overheads without kernel sockets.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}
