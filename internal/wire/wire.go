// Package wire provides the typed-message transport CLAM runs over: framed
// messages on reliable, in-order byte streams (ICDCS 1988, §3.4 and §4.4).
//
// The paper's design point is that multiplexing several conversations onto
// one UNIX stream is awkward without typed messages, so CLAM gives each
// communication channel its own stream: one per client for RPC requests and
// one per client for upcalls. This package supplies the framing both streams
// share, plus buffered writes so the RPC layer can batch several asynchronous
// calls into a single message exchange, and a simulated wide-area link used
// to reproduce the "different machines" rows of Figure 5.1 on one host.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"clam/internal/xdr"
)

// MsgType identifies the conversation a frame belongs to, replacing the
// "extra information to specify which conversation is currently active" the
// paper says untyped streams would require.
type MsgType uint8

// Message types. Hello messages pair a client's two streams into one
// session; Call/Reply carry RPC batches; Upcall/UpcallReply carry
// distributed upcalls; Load/LoadReply carry dynamic-loading requests; Sync
// forces a batch flush and round trip; Error reports server-detected faults;
// Ping/Pong are the liveness heartbeats either end may send on either
// stream — the paper's dual-stream protocol (§4.4) has no liveness story of
// its own, so heartbeats are the robustness layer's addition. Resume and
// ResumeReply re-pair a reconnecting stream with a parked session: a client
// whose link died presents its resume token instead of a fresh Hello, and
// the reply carries the server's receive high-water mark so the client can
// replay only the batches the server never saw.
const (
	MsgHello MsgType = iota + 1
	MsgHelloReply
	MsgCall
	MsgReply
	MsgUpcall
	MsgUpcallReply
	MsgLoad
	MsgLoadReply
	MsgSync
	MsgSyncReply
	MsgError
	MsgBye
	MsgPing
	MsgPong
	MsgResume
	MsgResumeReply
	MsgCancel
)

var msgTypeNames = map[MsgType]string{
	MsgHello:       "Hello",
	MsgHelloReply:  "HelloReply",
	MsgCall:        "Call",
	MsgReply:       "Reply",
	MsgUpcall:      "Upcall",
	MsgUpcallReply: "UpcallReply",
	MsgLoad:        "Load",
	MsgLoadReply:   "LoadReply",
	MsgSync:        "Sync",
	MsgSyncReply:   "SyncReply",
	MsgError:       "Error",
	MsgBye:         "Bye",
	MsgPing:        "Ping",
	MsgPong:        "Pong",
	MsgResume:      "Resume",
	MsgResumeReply: "ResumeReply",
	MsgCancel:      "Cancel",
}

// String returns a readable name for the message type.
func (t MsgType) String() string {
	if s, ok := msgTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// BodyLimit reports the cap on a frame body. The limit is shared with the
// xdr layer (xdr.MaxBytesLimit / xdr.SetMaxBytesLimit): the two layers
// used to disagree (64 MiB frames over 16 MiB decodables), which let a
// peer ship a frame that was fully allocated and read only to be rejected
// mid-decode. With one limit, an oversized body is refused at the frame
// header, before any of it is read.
func BodyLimit() int { return xdr.MaxBytesLimit() }

// headerLen is the fixed frame prefix: 4 bytes magic+type, 8 bytes sequence
// number, 4 bytes body length.
const headerLen = 16

// magic guards against a foreign protocol talking to a CLAM port.
const magic = 0xC1A0

// Stream is the byte transport a Conn frames messages over: a reliable,
// in-order duplex byte stream. Every net.Conn satisfies it, and so does a
// shared-memory ring endpoint (internal/shm) — the framing, batching and
// pooling above this seam are identical on both, which is what lets the
// whole session protocol (hello/resume, heartbeats, journal, mesh,
// fan-out) ride a ring without a fork.
type Stream interface {
	io.ReadWriteCloser
	LocalAddr() net.Addr
	RemoteAddr() net.Addr
}

// Msg is one framed message. Seq correlates replies with requests: a reply
// carries the Seq of the message it answers.
//
// Messages returned by Recv are pooled: the caller owns the message until
// it calls Release (or writes it back with Write/Send, which consumes it),
// after which the message and its body must not be touched. Data that
// must outlive the message must be copied out — the xdr decoders already
// copy, so decode-then-Release is the normal pattern.
type Msg struct {
	Type MsgType
	Seq  uint64
	Body []byte
	// Arrived is an optional receive timestamp (UnixNano) stamped by the
	// session read loop. Deadline budgets in call frames are anchored to it:
	// a call's remaining budget is measured from the moment its frame was
	// read off the wire, not from when a dispatch worker finally picks it
	// up — queue wait counts against the caller's deadline.
	Arrived int64
	// pooled marks a message whose storage came from msgPool and returns
	// there on Release. Caller-constructed messages are never pooled.
	pooled bool
}

// msgPool recycles Recv messages together with their body arrays. The
// paper's §5 table shows message handling dominating a CLAM call; on a
// modern runtime the per-frame make([]byte, n) is a large share of that,
// so steady-state Recv reuses released bodies instead of allocating.
var msgPool = sync.Pool{New: func() any { return new(Msg) }}

// maxPooledBody caps the body capacity the pool will retain, so one huge
// frame does not pin megabytes behind a pool entry forever.
const maxPooledBody = 256 << 10

// poolingOff disables frame pooling (the allocation ablation switch).
var poolingOff atomic.Bool

// SetPooling toggles frame-body pooling and reports the previous state.
// Pooling is on by default; turning it off restores the allocate-per-Recv
// behavior and is intended only for the allocation ablation benchmarks.
func SetPooling(on bool) (prev bool) { return !poolingOff.Swap(!on) }

// newRecvMsg returns a message with a body of length n, pooled when
// pooling is enabled.
func newRecvMsg(n int) *Msg {
	if poolingOff.Load() {
		m := &Msg{}
		if n > 0 {
			m.Body = make([]byte, n)
		}
		return m
	}
	m := msgPool.Get().(*Msg)
	m.pooled = true
	if n == 0 {
		m.Body = m.Body[:0]
		return m
	}
	if cap(m.Body) < n {
		m.Body = make([]byte, n)
	} else {
		m.Body = m.Body[:n]
	}
	return m
}

// Release returns a pooled message to the frame pool. It is a no-op for
// nil and caller-constructed messages, and idempotent for pooled ones,
// but any use of the message or a retained Body slice after Release is a
// data race with the next Recv.
func (m *Msg) Release() {
	if m == nil || !m.pooled {
		return
	}
	m.pooled = false
	m.Type = 0
	m.Seq = 0
	m.Arrived = 0
	if cap(m.Body) > maxPooledBody {
		m.Body = nil
	} else {
		m.Body = m.Body[:0]
	}
	msgPool.Put(m)
}

// Frame errors.
var (
	ErrBadMagic = errors.New("wire: bad frame magic")
	ErrBadType  = errors.New("wire: unknown frame type")
	ErrTooBig   = errors.New("wire: frame body exceeds limit")
	ErrClosed   = errors.New("wire: connection closed")
)

// validType reports whether t is a known frame type — checked on both
// ends so a corrupt header is caught before its length prefix can force
// an allocation.
func validType(t MsgType) bool { return t >= MsgHello && t <= MsgCancel }

// Conn frames messages over a Stream. Writes are buffered until Flush so
// several messages — or one message assembled incrementally — cost a single
// kernel round trip, which is what makes the paper's call batching pay off.
// Reads and writes may proceed concurrently; writers are serialized with
// each other, as are readers.
//
// Over kernel sockets (TCP, UNIX domain) the write side runs in vectored
// mode: queued frames are gathered into a single writev at Flush instead
// of being copied through a bufio buffer, so a coalesced burst of replies
// or a client batch plus its trailing Sync costs exactly one syscall
// regardless of size. Other streams (pipes, SimLink, shm rings) keep the
// bufio path, whose single Flush write is already optimal for them.
type Conn struct {
	wmu sync.Mutex
	// Exactly one of bw/vec is non-nil: bw is the buffered-copy write path,
	// vec the vectored-gather path for real sockets.
	bw  *bufio.Writer
	vec *vecWriter
	rmu sync.Mutex
	br  *bufio.Reader
	c   Stream

	closed sync.Once
	// Frame counters are atomic: Stats must not contend with a reader
	// blocked in Recv, which holds rmu across the wait for data.
	sent     atomic.Uint64
	received atomic.Uint64
	// Write-header scratch lives on the Conn (not the stack) because slices
	// passed through the io interfaces escape; guarded by wmu.
	wh [headerLen]byte
}

// connBuf is the size of the read buffer and (in bufio mode) the write
// buffer: frames at or under this ride the single-fill receive path.
const connBuf = 64 << 10

// NewConn wraps c in a framed connection.
func NewConn(c Stream) *Conn {
	conn := &Conn{
		br: bufio.NewReaderSize(c, connBuf),
		c:  c,
	}
	if vectorable(c) {
		conn.vec = newVecWriter(c)
	} else {
		conn.bw = bufio.NewWriterSize(c, connBuf)
	}
	return conn
}

// vectorable reports whether the stream supports true scatter-gather
// writes. Only kernel sockets do — net.Buffers degenerates to one write
// per slice everywhere else, which would be strictly worse than bufio.
func vectorable(c Stream) bool {
	switch c.(type) {
	case *net.TCPConn, *net.UnixConn:
		return true
	}
	return false
}

// RemoteAddr reports the address of the peer.
func (c *Conn) RemoteAddr() net.Addr { return c.c.RemoteAddr() }

// LocalAddr reports the local address.
func (c *Conn) LocalAddr() net.Addr { return c.c.LocalAddr() }

func putHeader(h []byte, t MsgType, seq uint64, n int) {
	binary.BigEndian.PutUint16(h[0:2], magic)
	h[2] = byte(t)
	h[3] = 0 // reserved
	binary.BigEndian.PutUint64(h[4:12], seq)
	binary.BigEndian.PutUint32(h[12:16], uint32(n))
}

// Write queues m on the connection without flushing. Use it to batch; pair
// with Flush. Safe for concurrent use. Writing a pooled message (one
// returned by Recv) consumes it: the body is recycled once it has been
// copied toward the kernel (in vectored mode, possibly not until the
// flush — either way the caller must not touch it after Write).
func (c *Conn) Write(m *Msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.writeLocked(m.Type, m.Seq, m.Body, m)
}

// WriteFrame is Write for callers assembling a frame from parts: it queues
// a frame of the given type, sequence and body without constructing a Msg
// (whose pointer would escape to the heap at every call site on the hot
// path). The body is copied before WriteFrame returns; the caller may
// reuse it immediately.
func (c *Conn) WriteFrame(t MsgType, seq uint64, body []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.writeLocked(t, seq, body, nil)
}

// writeLocked queues one frame; wmu must be held. m, when non-nil, is the
// pooled message owning body — vectored mode may retain it until the next
// flush instead of copying; either way it is consumed.
func (c *Conn) writeLocked(t MsgType, seq uint64, body []byte, m *Msg) error {
	if !validType(t) {
		return fmt.Errorf("%w: %d", ErrBadType, uint8(t))
	}
	if len(body) > BodyLimit() {
		return fmt.Errorf("%w: %d bytes", ErrTooBig, len(body))
	}
	putHeader(c.wh[:], t, seq, len(body))
	if c.vec != nil {
		c.vec.queue(c.wh[:], body, m)
		c.sent.Add(1)
		if c.vec.pending >= maxVecPending {
			return c.flushLocked()
		}
		return nil
	}
	if _, err := c.bw.Write(c.wh[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	// bufio either copies the body into its buffer or hands it to the
	// kernel before returning, so the caller's (or the pool's) reuse of
	// the array after this point is safe.
	if _, err := c.bw.Write(body); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	c.sent.Add(1)
	m.Release()
	return nil
}

// Flush pushes all queued frames to the kernel — one writev in vectored
// mode, one write otherwise.
func (c *Conn) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.flushLocked()
}

func (c *Conn) flushLocked() error {
	if c.vec != nil {
		if err := c.vec.flush(); err != nil {
			return fmt.Errorf("wire: flush: %w", err)
		}
		return nil
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("wire: flush: %w", err)
	}
	return nil
}

// Send writes m and flushes in one step.
func (c *Conn) Send(m *Msg) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.writeLocked(m.Type, m.Seq, m.Body, m); err != nil {
		return err
	}
	return c.flushLocked()
}

// SendFrame is Send without a Msg allocation at the call site; the body is
// not retained.
func (c *Conn) SendFrame(t MsgType, seq uint64, body []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.writeLocked(t, seq, body, nil); err != nil {
		return err
	}
	return c.flushLocked()
}

// recvChunk bounds how much body storage Recv commits before the bytes
// actually arrive: a corrupt-but-well-formed header can name a body up to
// BodyLimit, so large bodies are read in capped chunks and the buffer
// grows only as data shows up.
const recvChunk = 1 << 20

// mapReadErr folds the stream-is-gone error family into ErrClosed.
func mapReadErr(op string, err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) {
		return ErrClosed
	}
	return fmt.Errorf("wire: %s: %w", op, err)
}

// Recv blocks until the next frame arrives and returns it. The returned
// message is pooled: the caller owns it until Msg.Release (or a Write,
// which consumes it), and must copy out any body bytes it keeps.
//
// A frame is validated — magic, known type, reserved byte, body within
// the shared BodyLimit — before any body storage is committed, so a
// hostile or corrupt header cannot force a max-size allocation.
//
// The header is parsed in place with a buffered peek, and a frame that
// fits the read buffer is filled and copied out in one step — one read
// from the stream for header plus body, where the old path's two
// ReadFulls could cost two.
func (c *Conn) Recv() (*Msg, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	h, err := c.br.Peek(headerLen)
	if err != nil {
		return nil, mapReadErr("read header", err)
	}
	if binary.BigEndian.Uint16(h[0:2]) != magic {
		return nil, ErrBadMagic
	}
	if t := MsgType(h[2]); !validType(t) || h[3] != 0 {
		return nil, fmt.Errorf("%w: %d", ErrBadType, h[2])
	}
	n := int(binary.BigEndian.Uint32(h[12:16]))
	if n > BodyLimit() {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooBig, n)
	}
	m := newRecvMsg(min(n, recvChunk))
	m.Type = MsgType(h[2])
	m.Seq = binary.BigEndian.Uint64(h[4:12])
	if headerLen+n <= c.br.Size() {
		// Single-fill fast path: peek the whole frame (one stream read when
		// it is not yet buffered), copy the body out, consume it.
		buf, err := c.br.Peek(headerLen + n)
		if err != nil {
			m.Release()
			return nil, mapReadErr("read body", err)
		}
		copy(m.Body, buf[headerLen:])
		c.br.Discard(headerLen + n)
	} else {
		c.br.Discard(headerLen)
		if err := c.readBody(m, n); err != nil {
			m.Release()
			return nil, err
		}
	}
	c.received.Add(1)
	return m, nil
}

// readBody fills m.Body with the n-byte frame body, growing in recvChunk
// steps so storage is committed only as data arrives.
func (c *Conn) readBody(m *Msg, n int) error {
	if n <= recvChunk {
		if _, err := io.ReadFull(c.br, m.Body); err != nil {
			return mapBodyErr(err)
		}
		return nil
	}
	body := m.Body[:0]
	for len(body) < n {
		step := min(n-len(body), recvChunk)
		if cap(body)-len(body) < step {
			grown := make([]byte, len(body), min(2*cap(body)+step, n))
			copy(grown, body)
			body = grown
		}
		seg := body[len(body) : len(body)+step]
		if _, err := io.ReadFull(c.br, seg); err != nil {
			m.Body = body
			return mapBodyErr(err)
		}
		body = body[:len(body)+step]
	}
	m.Body = body
	return nil
}

// mapBodyErr preserves the old readBody error shape: a stream that died
// mid-body is a plain read error, not ErrClosed — the frame is torn either
// way, but the diagnostic names the failing read.
func mapBodyErr(err error) error {
	return fmt.Errorf("wire: read body: %w", err)
}

// Stats reports the number of frames sent and received so far. The two
// counters are sampled independently, so a snapshot taken during heavy
// traffic may be slightly stale.
func (c *Conn) Stats() (sent, received uint64) {
	return c.sent.Load(), c.received.Load()
}

// Close tears the connection down. It is safe to call more than once.
func (c *Conn) Close() error {
	var err error
	c.closed.Do(func() {
		c.wmu.Lock()
		if c.vec != nil {
			c.vec.drop()
		}
		c.wmu.Unlock()
		err = c.c.Close()
	})
	return err
}

// Pipe returns a connected pair of in-memory framed connections, useful for
// tests and for measuring protocol overheads without kernel sockets.
func Pipe() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

// --- vectored write path ----------------------------------------------------

// maxVecPending auto-flushes the gather list once this many bytes are
// queued, bounding how much memory (and how many pooled bodies) an
// unflushed burst can pin.
const maxVecPending = 256 << 10

// vecChunk is the arena chunk size: headers and small bodies are copied
// into chunks so adjacent frames merge into one iovec.
const vecChunk = 64 << 10

// vecRetain is the body size above which a pooled message is retained by
// reference until the flush instead of being copied into the arena: the
// iovec entry is cheaper than the copy for large bodies, and the pool
// contract (caller must not touch a written message) makes the retention
// safe.
const vecRetain = 4 << 10

// vecFlushes / vecFrames count vectored flushes (writev calls issued on
// behalf of queued frames) and the frames they carried, for TransportStats.
var (
	vecFlushes atomic.Uint64
	vecFrames  atomic.Uint64
)

// VecStats reports process-wide vectored-write activity: gather flushes
// (each one writev burst) and the frames those flushes carried. The ratio
// frames/flushes is the syscall batching factor.
func VecStats() (flushes, frames uint64) {
	return vecFlushes.Load(), vecFrames.Load()
}

// vecWriter gathers queued frames into a net.Buffers for a single writev
// at flush. Headers and small bodies are copied into arena chunks (and
// merged into one iovec when adjacent); large pooled bodies are referenced
// in place and released after the flush. Guarded by the Conn's wmu.
type vecWriter struct {
	w    io.Writer
	bufs net.Buffers
	// arena is the current copy chunk (len = used). tail tracks the iovec
	// that is the growing end of arena so consecutive copies extend it
	// instead of adding entries; tailIdx is -1 when the last iovec is a
	// referenced body or a retired chunk.
	arena     []byte
	spare     [][]byte // full chunks, kept until flush (first is reused after)
	tailIdx   int
	tailStart int
	retained  []*Msg
	pending   int
	frames    int
}

func newVecWriter(w io.Writer) *vecWriter {
	return &vecWriter{
		w:       w,
		arena:   make([]byte, 0, vecChunk),
		tailIdx: -1,
	}
}

// queue adds one frame (header + body) to the gather list. m, when
// non-nil, is the pooled message owning body.
func (v *vecWriter) queue(hdr, body []byte, m *Msg) {
	v.copyIn(hdr)
	if m != nil && m.pooled && len(body) >= vecRetain {
		v.bufs = append(v.bufs, body)
		v.tailIdx = -1
		v.pending += len(body)
		v.retained = append(v.retained, m)
	} else {
		v.copyIn(body)
		m.Release()
	}
	v.frames++
}

// copyIn appends p to the arena, extending the tail iovec when the bytes
// land contiguously after it.
func (v *vecWriter) copyIn(p []byte) {
	for len(p) > 0 {
		if cap(v.arena) == len(v.arena) {
			v.spare = append(v.spare, v.arena)
			v.arena = make([]byte, 0, max(vecChunk, len(p)))
			v.tailIdx = -1
		}
		start := len(v.arena)
		n := copy(v.arena[start:cap(v.arena)], p)
		v.arena = v.arena[:start+n]
		if v.tailIdx >= 0 {
			v.bufs[v.tailIdx] = v.arena[v.tailStart:len(v.arena)]
		} else {
			v.bufs = append(v.bufs, v.arena[start:len(v.arena)])
			v.tailIdx = len(v.bufs) - 1
			v.tailStart = start
		}
		v.pending += n
		p = p[n:]
	}
}

// flush issues the gathered frames as one vectored write and resets the
// writer. The iovec list is consumed by net.Buffers.WriteTo (writev under
// the hood, looping only if the kernel accepts less than everything).
func (v *vecWriter) flush() error {
	if len(v.bufs) == 0 {
		return nil
	}
	bufs := v.bufs
	_, err := bufs.WriteTo(v.w)
	vecFlushes.Add(1)
	vecFrames.Add(uint64(v.frames))
	v.reset()
	return err
}

// drop discards queued frames without writing (close path).
func (v *vecWriter) drop() { v.reset() }

func (v *vecWriter) reset() {
	for _, m := range v.retained {
		m.Release()
	}
	v.retained = v.retained[:0]
	for i := range v.bufs {
		v.bufs[i] = nil
	}
	v.bufs = v.bufs[:0]
	if len(v.spare) > 0 {
		v.arena = v.spare[0][:0]
		for i := range v.spare {
			v.spare[i] = nil
		}
		v.spare = v.spare[:0]
	} else {
		v.arena = v.arena[:0]
	}
	v.tailIdx = -1
	v.pending = 0
	v.frames = 0
}
