package wire

import (
	"net"
	"testing"
	"time"
)

func TestConnAddrs(t *testing.T) {
	ac, bc := net.Pipe()
	a, b := NewConn(ac), NewConn(bc)
	defer a.Close()
	defer b.Close()
	if a.LocalAddr() == nil || a.RemoteAddr() == nil {
		t.Error("nil addrs")
	}
}

func TestFlushEmpty(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	if err := a.Flush(); err != nil {
		t.Errorf("empty flush: %v", err)
	}
}

func TestSimLinkPassthroughMethods(t *testing.T) {
	clientRaw, serverRaw := tcpPair(t)
	defer serverRaw.Close()
	l := NewSimLink(clientRaw, time.Millisecond, 0)
	defer l.Close()
	if l.LocalAddr() == nil || l.RemoteAddr() == nil {
		t.Error("nil addrs")
	}
	if err := l.SetDeadline(time.Now().Add(time.Minute)); err != nil {
		t.Errorf("SetDeadline: %v", err)
	}
	if err := l.SetReadDeadline(time.Now().Add(time.Minute)); err != nil {
		t.Errorf("SetReadDeadline: %v", err)
	}
	if err := l.SetWriteDeadline(time.Now().Add(time.Minute)); err != nil {
		t.Errorf("SetWriteDeadline: %v", err)
	}
}

func TestSimLinkReadPassesThrough(t *testing.T) {
	clientRaw, serverRaw := tcpPair(t)
	l := NewSimLink(clientRaw, time.Millisecond, 0)
	defer l.Close()
	go serverRaw.Write([]byte("pong"))
	buf := make([]byte, 4)
	n, err := l.Read(buf)
	if err != nil || string(buf[:n]) != "pong" {
		t.Errorf("read %q err %v", buf[:n], err)
	}
}

func TestSimLinkWriteAfterPeerGone(t *testing.T) {
	clientRaw, serverRaw := tcpPair(t)
	l := NewSimLink(clientRaw, 0, 0)
	serverRaw.Close()
	// The pump hits a write error eventually; writes must then fail
	// rather than accumulate forever.
	deadline := time.Now().Add(2 * time.Second)
	failed := false
	for time.Now().Before(deadline) {
		if _, err := l.Write([]byte("x")); err != nil {
			failed = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !failed {
		t.Log("write error not surfaced (kernel buffering); acceptable on loopback")
	}
	l.Close()
}
