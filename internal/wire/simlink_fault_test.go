package wire

import (
	"io"
	"net"
	"testing"
	"time"
)

// Fault-injection hooks on SimLink: each fault mode must shape traffic as
// advertised, deterministically, so the core chaos tests can rely on them.

// collectReads drains conn into a channel of chunks until EOF/error.
func collectReads(conn net.Conn) <-chan []byte {
	out := make(chan []byte, 64)
	go func() {
		defer close(out)
		buf := make([]byte, 4096)
		for {
			n, err := conn.Read(buf)
			if n > 0 {
				out <- append([]byte(nil), buf[:n]...)
			}
			if err != nil {
				return
			}
		}
	}()
	return out
}

func recvAll(ch <-chan []byte, within time.Duration) []byte {
	var all []byte
	deadline := time.After(within)
	for {
		select {
		case b, ok := <-ch:
			if !ok {
				return all
			}
			all = append(all, b...)
		case <-deadline:
			return all
		}
	}
}

func TestSimLinkInjectDrop(t *testing.T) {
	a, b := net.Pipe()
	l := NewSimLink(a, 0, 0)
	defer l.Close()
	got := collectReads(b)

	l.InjectDrop(1)
	if _, err := l.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Write([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	if s := string(recvAll(got, 500*time.Millisecond)); s != "kept" {
		t.Errorf("after drop, peer read %q, want %q", s, "kept")
	}
	if l.FaultCount() != 1 {
		t.Errorf("FaultCount = %d, want 1", l.FaultCount())
	}
}

func TestSimLinkInjectDuplicate(t *testing.T) {
	a, b := net.Pipe()
	l := NewSimLink(a, 0, 0)
	defer l.Close()
	got := collectReads(b)

	l.InjectDuplicate(1)
	if _, err := l.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	if s := string(recvAll(got, 500*time.Millisecond)); s != "abab" {
		t.Errorf("after duplicate, peer read %q, want %q", s, "abab")
	}
}

func TestSimLinkInjectDelay(t *testing.T) {
	a, b := net.Pipe()
	l := NewSimLink(a, 0, 0)
	defer l.Close()
	got := collectReads(b)

	const extra = 150 * time.Millisecond
	l.InjectDelay(1, extra)
	start := time.Now()
	if _, err := l.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
		if d := time.Since(start); d < extra/2 {
			t.Errorf("delayed write arrived after %v, want >= %v", d, extra/2)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delayed write never arrived")
	}
}

func TestSimLinkSeverMidMessage(t *testing.T) {
	a, b := net.Pipe()
	l := NewSimLink(a, 0, 0)
	got := collectReads(b)

	l.SeverMidMessage()
	if _, err := l.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	torn := recvAll(got, time.Second)
	if len(torn) != 5 {
		t.Errorf("peer read %d bytes of a torn message, want 5", len(torn))
	}
	// The link is dead: subsequent writes fail.
	deadline := time.Now().Add(time.Second)
	for {
		if _, err := l.Write([]byte("x")); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writes still succeed after sever")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSimLinkSever(t *testing.T) {
	a, b := net.Pipe()
	l := NewSimLink(a, 0, 0)
	if err := l.Sever(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := b.Read(buf); err != io.EOF && err != io.ErrClosedPipe {
		t.Errorf("peer read after sever: %v, want EOF", err)
	}
	if _, err := l.Write([]byte("x")); err == nil {
		t.Error("write succeeded on severed link")
	}
}

func TestSimLinkKillAfterWrites(t *testing.T) {
	a, b := net.Pipe()
	l := NewSimLink(a, 0, 0)
	got := collectReads(b)

	l.KillAfterWrites(2)
	if _, err := l.Write([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Write([]byte("two")); err != nil {
		t.Fatal(err)
	}
	// Both writes arrive whole — the kill cuts the link between frames,
	// never inside one — and then the peer sees a clean EOF.
	if s := string(recvAll(got, time.Second)); s != "onetwo" {
		t.Errorf("peer read %q, want %q", s, "onetwo")
	}
	buf := make([]byte, 1)
	if _, err := b.Read(buf); err == nil {
		t.Error("peer connection still open after scripted kill")
	}
	deadline := time.Now().Add(time.Second)
	for {
		if _, err := l.Write([]byte("x")); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writes still succeed after scripted kill")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if l.FaultCount() != 1 {
		t.Errorf("FaultCount = %d, want 1", l.FaultCount())
	}
}

func TestSimLinkKillAfterDuration(t *testing.T) {
	a, b := net.Pipe()
	l := NewSimLink(a, 0, 0)
	got := collectReads(b)

	if _, err := l.Write([]byte("early")); err != nil {
		t.Fatal(err)
	}
	if s := string(recvAll(got, 500*time.Millisecond)); s != "early" {
		t.Fatalf("pre-kill write read %q, want %q", s, "early")
	}
	l.KillAfter(30 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := l.Write([]byte("x")); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("link never died after KillAfter elapsed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := b.Read(make([]byte, 1)); err == nil {
		t.Error("peer connection still open after timed kill")
	}
}

func TestSimLinkKillAfterStopped(t *testing.T) {
	a, b := net.Pipe()
	l := NewSimLink(a, 0, 0)
	defer l.Close()
	got := collectReads(b)

	tm := l.KillAfter(20 * time.Millisecond)
	tm.Stop()
	time.Sleep(60 * time.Millisecond)
	if _, err := l.Write([]byte("alive")); err != nil {
		t.Fatalf("write after cancelled kill: %v", err)
	}
	if s := string(recvAll(got, 500*time.Millisecond)); s != "alive" {
		t.Errorf("peer read %q, want %q", s, "alive")
	}
}

func TestSimLinkPartition(t *testing.T) {
	a, b := net.Pipe()
	l := NewSimLink(a, 0, 0)
	defer l.Close()
	got := collectReads(b)

	// Healthy round trip in both directions first.
	if _, err := l.Write([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	if s := string(recvAll(got, 500*time.Millisecond)); s != "pre" {
		t.Fatalf("pre-partition write read %q, want %q", s, "pre")
	}

	l.Partition()

	// Write side: swallowed silently, writer sees success.
	if _, err := l.Write([]byte("w-lost")); err != nil {
		t.Fatal(err)
	}
	if s := recvAll(got, 200*time.Millisecond); len(s) != 0 {
		t.Errorf("partitioned link delivered %q to the peer", s)
	}

	// Read side: the peer's bytes are consumed and discarded, so our reader
	// keeps blocking. net.Pipe writes are synchronous — b.Write only returns
	// once the discard loop has consumed it — so the FaultCount bump proves
	// the bytes were eaten, not buffered.
	inbound := collectReads(l)
	faultsBefore := l.FaultCount()
	if _, err := b.Write([]byte("r-lost")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for l.FaultCount() < faultsBefore+1 {
		if time.Now().After(deadline) {
			t.Fatal("partitioned read side never discarded inbound bytes")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case data := <-inbound:
		t.Fatalf("partitioned link surfaced inbound %q to the reader", data)
	case <-time.After(100 * time.Millisecond):
	}

	l.Heal()

	// Both directions flow again; the partitioned traffic stays lost.
	if _, err := l.Write([]byte("w-back")); err != nil {
		t.Fatal(err)
	}
	if s := string(recvAll(got, 500*time.Millisecond)); s != "w-back" {
		t.Errorf("after heal, peer read %q, want %q", s, "w-back")
	}
	if _, err := b.Write([]byte("r-back")); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-inbound:
		if string(data) != "r-back" {
			t.Errorf("after heal, reader got %q, want %q", data, "r-back")
		}
	case <-time.After(time.Second):
		t.Fatal("after heal, inbound bytes never reached the reader")
	}
}

func TestSimLinkBlackhole(t *testing.T) {
	a, b := net.Pipe()
	l := NewSimLink(a, 0, 0)
	defer l.Close()
	got := collectReads(b)

	l.InjectBlackhole(true)
	if _, err := l.Write([]byte("void")); err != nil {
		t.Fatal(err)
	}
	if s := recvAll(got, 200*time.Millisecond); len(s) != 0 {
		t.Errorf("blackholed link delivered %q", s)
	}
	l.InjectBlackhole(false)
	if _, err := l.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if s := string(recvAll(got, 500*time.Millisecond)); s != "back" {
		t.Errorf("after blackhole off, peer read %q, want %q", s, "back")
	}
}
