package wire

import (
	"net"
	"sync"
	"time"
)

// SimLink wraps a net.Conn and delays delivery of written data to model a
// network link with propagation latency and a bandwidth ceiling. It is used
// to reproduce the "processes on different machines" rows of Figure 5.1 on a
// single host: the code path is identical to the loopback-TCP rows, with
// only the wire's propagation delay added — which is exactly what separates
// those rows in the paper (12 400 µs vs 11 500 µs per call).
//
// Writes return as soon as the data is queued, as with a real NIC; a pump
// goroutine releases each chunk to the underlying connection once its
// delivery time arrives, preserving write order.
type SimLink struct {
	conn    net.Conn
	latency time.Duration
	// bytesPerSec of 0 means unlimited bandwidth.
	bytesPerSec int64

	mu       sync.Mutex
	queue    []simChunk
	inflight bool // pump has dequeued a chunk it has not yet written
	wake     chan struct{}
	werr     error
	closed   bool
	done     chan struct{}
	lastOut  time.Time // when the link's transmitter frees up

	// Fault-injection state (chaos testing): counts of upcoming writes to
	// drop, duplicate or delay, plus the blackhole and sever-mid-message
	// switches. All guarded by mu.
	dropN       int
	dupN        int
	delayN      int
	delayBy     time.Duration
	blackout    bool
	severMid    bool
	partitioned bool
	killIn      int    // cut the link after this many more writes (0 = unarmed)
	faults      uint64 // chunks affected by any injected fault
}

type simChunk struct {
	data      []byte
	deliverAt time.Time
	sever     bool // deliver only half, then cut the connection
	kill      bool // deliver in full, then cut the connection
}

var _ net.Conn = (*SimLink)(nil)

// NewSimLink returns a SimLink over conn adding one-way latency to every
// write. bytesPerSec, if positive, also models serialization delay.
func NewSimLink(conn net.Conn, latency time.Duration, bytesPerSec int64) *SimLink {
	l := &SimLink{
		conn:        conn,
		latency:     latency,
		bytesPerSec: bytesPerSec,
		wake:        make(chan struct{}, 1),
		done:        make(chan struct{}),
	}
	go l.pump()
	return l
}

// Write queues p for delayed delivery and returns immediately.
func (l *SimLink) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, net.ErrClosed
	}
	if l.werr != nil {
		return 0, l.werr
	}
	// Injected faults, applied in order of destructiveness: a partitioned
	// or blackholed link swallows everything; a dropped write vanishes
	// silently (the writer believes it was sent, as with a lossy network).
	if l.partitioned {
		l.faults++
		return len(p), nil
	}
	if l.blackout {
		l.faults++
		return len(p), nil
	}
	if l.dropN > 0 {
		l.dropN--
		l.faults++
		return len(p), nil
	}
	extraDelay := time.Duration(0)
	if l.delayN > 0 {
		l.delayN--
		l.faults++
		extraDelay = l.delayBy
	}
	duplicate := false
	if l.dupN > 0 {
		l.dupN--
		l.faults++
		duplicate = true
	}
	sever := false
	if l.severMid {
		l.severMid = false
		l.faults++
		sever = true
	}
	kill := false
	if l.killIn > 0 {
		l.killIn--
		if l.killIn == 0 {
			l.faults++
			kill = true
		}
	}
	now := time.Now()
	// Serialization delay: the transmitter sends at bytesPerSec, so a chunk
	// occupies the line for len/bps after the previous chunk finishes.
	start := now
	if l.bytesPerSec > 0 {
		if l.lastOut.After(start) {
			start = l.lastOut
		}
		occupy := time.Duration(int64(len(p)) * int64(time.Second) / l.bytesPerSec)
		l.lastOut = start.Add(occupy)
		start = l.lastOut
	}
	chunk := simChunk{
		data:      append([]byte(nil), p...),
		deliverAt: start.Add(l.latency + extraDelay),
		sever:     sever,
		kill:      kill,
	}
	l.queue = append(l.queue, chunk)
	if duplicate {
		dup := chunk
		dup.data = append([]byte(nil), p...)
		l.queue = append(l.queue, dup)
	}
	select {
	case l.wake <- struct{}{}:
	default:
	}
	return len(p), nil
}

// --- fault injection --------------------------------------------------------
//
// These hooks model the classic link faults for chaos tests. They affect
// writes through this SimLink only; the peer's link (if any) is independent.

// InjectDrop silently discards the next n writes. The writer sees success,
// as with a lossy network device.
func (l *SimLink) InjectDrop(n int) {
	l.mu.Lock()
	l.dropN += n
	l.mu.Unlock()
}

// InjectDuplicate delivers each of the next n writes twice, back to back.
func (l *SimLink) InjectDuplicate(n int) {
	l.mu.Lock()
	l.dupN += n
	l.mu.Unlock()
}

// InjectDelay adds d of extra one-way latency to each of the next n writes.
func (l *SimLink) InjectDelay(n int, d time.Duration) {
	l.mu.Lock()
	l.delayN += n
	l.delayBy = d
	l.mu.Unlock()
}

// InjectBlackhole switches the link into (or out of) a state where every
// write is silently swallowed while the connection stays open — the
// wedged-peer case a liveness window exists to catch.
func (l *SimLink) InjectBlackhole(on bool) {
	l.mu.Lock()
	l.blackout = on
	l.mu.Unlock()
}

// Partition cuts the link in BOTH directions while the connection stays
// open: writes are silently swallowed and inbound bytes are read off the
// underlying connection and discarded. Unlike InjectBlackhole — which
// wedges only the write side, so the peer's traffic still arrives — a
// partitioned link models a network split: neither side hears the other,
// yet neither side sees a connection error. Data that crosses the link
// while partitioned is lost, not delayed; if the partition lands mid-frame
// the peer sees a torn frame at Heal time, exactly as a real partition
// tears a byte stream.
func (l *SimLink) Partition() {
	l.mu.Lock()
	l.partitioned = true
	l.mu.Unlock()
}

// Heal ends a Partition: subsequent writes flow again and inbound bytes are
// delivered to the reader once more.
func (l *SimLink) Heal() {
	l.mu.Lock()
	l.partitioned = false
	l.mu.Unlock()
}

// SeverMidMessage truncates the next write halfway and then cuts the
// underlying connection, so the peer sees a torn frame followed by EOF.
func (l *SimLink) SeverMidMessage() {
	l.mu.Lock()
	l.severMid = true
	l.mu.Unlock()
}

// KillAfterWrites arms a scripted mid-stream connection kill: the next n
// writes are delivered intact, and immediately after the n-th reaches the
// peer the underlying connection is cut. Unlike SeverMidMessage the peer
// sees whole frames followed by a clean EOF — the deterministic
// "connection died between messages" case reconnect logic must handle.
// Calling it again rearms the countdown.
func (l *SimLink) KillAfterWrites(n int) {
	l.mu.Lock()
	l.killIn = n
	l.mu.Unlock()
}

// KillAfter severs the link once d has elapsed, regardless of traffic.
// Combined with a dial hook that rearms it per connection, it scripts a
// flap schedule (drop-every-T). The returned timer can be stopped to
// cancel the pending kill.
func (l *SimLink) KillAfter(d time.Duration) *time.Timer {
	return time.AfterFunc(d, func() { l.Sever() })
}

// Sever cuts the underlying connection immediately, discarding anything
// still queued on the link.
func (l *SimLink) Sever() error {
	l.mu.Lock()
	l.queue = nil
	l.werr = net.ErrClosed
	l.mu.Unlock()
	return l.conn.Close()
}

// FaultCount reports how many writes have been affected by injected faults.
func (l *SimLink) FaultCount() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.faults
}

func (l *SimLink) pump() {
	for {
		l.mu.Lock()
		for len(l.queue) == 0 {
			closed := l.closed
			l.mu.Unlock()
			if closed {
				return
			}
			select {
			case <-l.wake:
			case <-l.done:
				// Drain anything queued before close, then exit.
				l.mu.Lock()
				if len(l.queue) == 0 {
					l.mu.Unlock()
					return
				}
				l.mu.Unlock()
			}
			l.mu.Lock()
		}
		chunk := l.queue[0]
		l.queue = l.queue[1:]
		l.inflight = true
		l.mu.Unlock()

		if d := time.Until(chunk.deliverAt); d > 0 {
			time.Sleep(d)
		}
		if chunk.sever {
			// Deliver a torn message: half the bytes, then a dead link.
			l.conn.Write(chunk.data[:len(chunk.data)/2])
			l.conn.Close()
			l.mu.Lock()
			l.inflight = false
			l.werr = net.ErrClosed
			l.queue = nil
			l.mu.Unlock()
			return
		}
		_, err := l.conn.Write(chunk.data)
		if chunk.kill && err == nil {
			// Scripted kill: the frame arrived whole, and then the
			// connection died.
			l.conn.Close()
			l.mu.Lock()
			l.inflight = false
			l.werr = net.ErrClosed
			l.queue = nil
			l.mu.Unlock()
			return
		}
		l.mu.Lock()
		l.inflight = false
		if err != nil {
			l.werr = err
			l.queue = nil
			l.mu.Unlock()
			return
		}
		l.mu.Unlock()
	}
}

// Read passes through to the underlying connection; the peer's SimLink (if
// any) is responsible for delaying traffic in the other direction. While
// the link is partitioned, inbound bytes are consumed and discarded so the
// reader blocks as it would on a silent network split.
func (l *SimLink) Read(p []byte) (int, error) {
	for {
		n, err := l.conn.Read(p)
		l.mu.Lock()
		cut := l.partitioned
		if cut && n > 0 {
			l.faults++
		}
		l.mu.Unlock()
		if !cut || err != nil {
			return n, err
		}
	}
}

// Close flushes queued chunks and closes the underlying connection.
func (l *SimLink) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.done)
	pending := len(l.queue) > 0 || l.inflight
	l.mu.Unlock()
	// Give the pump a moment to drain writes already queued, so a final
	// Bye message is not cut off mid-frame.
	if pending {
		deadline := time.Now().Add(l.latency + 100*time.Millisecond)
		for time.Now().Before(deadline) {
			l.mu.Lock()
			busy := len(l.queue) > 0 || l.inflight
			l.mu.Unlock()
			if !busy {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	return l.conn.Close()
}

// LocalAddr reports the underlying connection's local address.
func (l *SimLink) LocalAddr() net.Addr { return l.conn.LocalAddr() }

// RemoteAddr reports the underlying connection's remote address.
func (l *SimLink) RemoteAddr() net.Addr { return l.conn.RemoteAddr() }

// SetDeadline sets read and write deadlines on the underlying connection.
func (l *SimLink) SetDeadline(t time.Time) error { return l.conn.SetDeadline(t) }

// SetReadDeadline sets the read deadline on the underlying connection.
func (l *SimLink) SetReadDeadline(t time.Time) error { return l.conn.SetReadDeadline(t) }

// SetWriteDeadline sets the write deadline on the underlying connection.
func (l *SimLink) SetWriteDeadline(t time.Time) error { return l.conn.SetWriteDeadline(t) }
