package wire

import (
	"net"
	"sync"
	"time"
)

// SimLink wraps a net.Conn and delays delivery of written data to model a
// network link with propagation latency and a bandwidth ceiling. It is used
// to reproduce the "processes on different machines" rows of Figure 5.1 on a
// single host: the code path is identical to the loopback-TCP rows, with
// only the wire's propagation delay added — which is exactly what separates
// those rows in the paper (12 400 µs vs 11 500 µs per call).
//
// Writes return as soon as the data is queued, as with a real NIC; a pump
// goroutine releases each chunk to the underlying connection once its
// delivery time arrives, preserving write order.
type SimLink struct {
	conn    net.Conn
	latency time.Duration
	// bytesPerSec of 0 means unlimited bandwidth.
	bytesPerSec int64

	mu       sync.Mutex
	queue    []simChunk
	inflight bool // pump has dequeued a chunk it has not yet written
	wake     chan struct{}
	werr     error
	closed   bool
	done     chan struct{}
	lastOut  time.Time // when the link's transmitter frees up
}

type simChunk struct {
	data      []byte
	deliverAt time.Time
}

var _ net.Conn = (*SimLink)(nil)

// NewSimLink returns a SimLink over conn adding one-way latency to every
// write. bytesPerSec, if positive, also models serialization delay.
func NewSimLink(conn net.Conn, latency time.Duration, bytesPerSec int64) *SimLink {
	l := &SimLink{
		conn:        conn,
		latency:     latency,
		bytesPerSec: bytesPerSec,
		wake:        make(chan struct{}, 1),
		done:        make(chan struct{}),
	}
	go l.pump()
	return l
}

// Write queues p for delayed delivery and returns immediately.
func (l *SimLink) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, net.ErrClosed
	}
	if l.werr != nil {
		return 0, l.werr
	}
	now := time.Now()
	// Serialization delay: the transmitter sends at bytesPerSec, so a chunk
	// occupies the line for len/bps after the previous chunk finishes.
	start := now
	if l.bytesPerSec > 0 {
		if l.lastOut.After(start) {
			start = l.lastOut
		}
		occupy := time.Duration(int64(len(p)) * int64(time.Second) / l.bytesPerSec)
		l.lastOut = start.Add(occupy)
		start = l.lastOut
	}
	l.queue = append(l.queue, simChunk{
		data:      append([]byte(nil), p...),
		deliverAt: start.Add(l.latency),
	})
	select {
	case l.wake <- struct{}{}:
	default:
	}
	return len(p), nil
}

func (l *SimLink) pump() {
	for {
		l.mu.Lock()
		for len(l.queue) == 0 {
			closed := l.closed
			l.mu.Unlock()
			if closed {
				return
			}
			select {
			case <-l.wake:
			case <-l.done:
				// Drain anything queued before close, then exit.
				l.mu.Lock()
				if len(l.queue) == 0 {
					l.mu.Unlock()
					return
				}
				l.mu.Unlock()
			}
			l.mu.Lock()
		}
		chunk := l.queue[0]
		l.queue = l.queue[1:]
		l.inflight = true
		l.mu.Unlock()

		if d := time.Until(chunk.deliverAt); d > 0 {
			time.Sleep(d)
		}
		_, err := l.conn.Write(chunk.data)
		l.mu.Lock()
		l.inflight = false
		if err != nil {
			l.werr = err
			l.queue = nil
			l.mu.Unlock()
			return
		}
		l.mu.Unlock()
	}
}

// Read passes through to the underlying connection; the peer's SimLink (if
// any) is responsible for delaying traffic in the other direction.
func (l *SimLink) Read(p []byte) (int, error) { return l.conn.Read(p) }

// Close flushes queued chunks and closes the underlying connection.
func (l *SimLink) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.done)
	pending := len(l.queue) > 0 || l.inflight
	l.mu.Unlock()
	// Give the pump a moment to drain writes already queued, so a final
	// Bye message is not cut off mid-frame.
	if pending {
		deadline := time.Now().Add(l.latency + 100*time.Millisecond)
		for time.Now().Before(deadline) {
			l.mu.Lock()
			busy := len(l.queue) > 0 || l.inflight
			l.mu.Unlock()
			if !busy {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	return l.conn.Close()
}

// LocalAddr reports the underlying connection's local address.
func (l *SimLink) LocalAddr() net.Addr { return l.conn.LocalAddr() }

// RemoteAddr reports the underlying connection's remote address.
func (l *SimLink) RemoteAddr() net.Addr { return l.conn.RemoteAddr() }

// SetDeadline sets read and write deadlines on the underlying connection.
func (l *SimLink) SetDeadline(t time.Time) error { return l.conn.SetDeadline(t) }

// SetReadDeadline sets the read deadline on the underlying connection.
func (l *SimLink) SetReadDeadline(t time.Time) error { return l.conn.SetReadDeadline(t) }

// SetWriteDeadline sets the write deadline on the underlying connection.
func (l *SimLink) SetWriteDeadline(t time.Time) error { return l.conn.SetWriteDeadline(t) }
