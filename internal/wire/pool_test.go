package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"clam/internal/xdr"
)

// loopConn is a single-goroutine in-memory net.Conn: writes append to a
// buffer, reads drain it. It lets a test drive a full Send/Recv round
// trip without goroutines or kernel sockets, which is what the
// allocation guards need.
type loopConn struct{ buf bytes.Buffer }

func (l *loopConn) Read(p []byte) (int, error)         { return l.buf.Read(p) }
func (l *loopConn) Write(p []byte) (int, error)        { return l.buf.Write(p) }
func (l *loopConn) Close() error                       { return nil }
func (l *loopConn) LocalAddr() net.Addr                { return loopAddr{} }
func (l *loopConn) RemoteAddr() net.Addr               { return loopAddr{} }
func (l *loopConn) SetDeadline(t time.Time) error      { return nil }
func (l *loopConn) SetReadDeadline(t time.Time) error  { return nil }
func (l *loopConn) SetWriteDeadline(t time.Time) error { return nil }

type loopAddr struct{}

func (loopAddr) Network() string { return "loop" }
func (loopAddr) String() string  { return "loop" }

func loopPair() *Conn { return NewConn(&loopConn{}) }

// roundTrip sends m and receives it back on the same in-memory conn.
func roundTrip(t *testing.T, c *Conn, m *Msg) *Msg {
	t.Helper()
	if err := c.Send(m); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	return got
}

// The frame layer and the xdr layer now share one configurable body
// limit: a body of exactly the limit passes, one byte more is rejected
// on both the write and the read side.
func TestBodyLimitBoundary(t *testing.T) {
	const limit = 4096
	prev := xdr.SetMaxBytesLimit(limit)
	defer xdr.SetMaxBytesLimit(prev)

	if got := BodyLimit(); got != limit {
		t.Fatalf("BodyLimit() = %d, want %d (shared with xdr)", got, limit)
	}

	c := loopPair()
	got := roundTrip(t, c, &Msg{Type: MsgCall, Seq: 1, Body: make([]byte, limit)})
	if len(got.Body) != limit {
		t.Fatalf("at-limit body arrived with %d bytes, want %d", len(got.Body), limit)
	}
	got.Release()

	if err := c.Write(&Msg{Type: MsgCall, Body: make([]byte, limit+1)}); !errors.Is(err, ErrTooBig) {
		t.Errorf("write over limit: err = %v, want ErrTooBig", err)
	}

	// A peer ignoring the limit is stopped at the header.
	raw := &loopConn{}
	var h [headerLen]byte
	putHeader(h[:], MsgCall, 1, limit+1)
	raw.Write(h[:])
	if _, err := NewConn(raw).Recv(); !errors.Is(err, ErrTooBig) {
		t.Errorf("recv over limit: err = %v, want ErrTooBig", err)
	}
}

// A corrupt header with an unknown type byte is rejected before its
// length prefix can force any body allocation: total bytes allocated by
// the rejection stay far below the max-size body the header announces.
func TestHostileHeaderRejectedBeforeAllocation(t *testing.T) {
	var h [headerLen]byte
	binary.BigEndian.PutUint16(h[0:2], magic)
	h[2] = 200 // no such MsgType
	binary.BigEndian.PutUint32(h[12:16], uint32(BodyLimit()))

	conn := &loopConn{}
	conn.buf.Write(h[:])
	c := NewConn(conn) // bufio buffers allocated here, outside the window

	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	_, err := c.Recv()
	runtime.ReadMemStats(&m1)
	if !errors.Is(err, ErrBadType) {
		t.Fatalf("err = %v, want ErrBadType", err)
	}
	if spent := m1.TotalAlloc - m0.TotalAlloc; spent > 1<<20 {
		t.Errorf("rejecting a hostile header allocated %d bytes; the %d-byte body must not be allocated", spent, BodyLimit())
	}
}

// A nonzero reserved byte is a corrupt header, not a frame.
func TestReservedByteRejected(t *testing.T) {
	raw := &loopConn{}
	var h [headerLen]byte
	putHeader(h[:], MsgCall, 1, 0)
	h[3] = 7
	raw.Write(h[:])
	if _, err := NewConn(raw).Recv(); !errors.Is(err, ErrBadType) {
		t.Errorf("err = %v, want ErrBadType", err)
	}
}

// Write refuses to put an unknown type on the wire at all.
func TestUnknownTypeRejected(t *testing.T) {
	c := loopPair()
	if err := c.Write(&Msg{Type: MsgType(200)}); !errors.Is(err, ErrBadType) {
		t.Errorf("err = %v, want ErrBadType", err)
	}
}

// A header may truthfully announce a large body; Recv must commit
// storage chunk by chunk and still reassemble the body intact.
func TestChunkedLargeBodyRoundTrip(t *testing.T) {
	n := 3*recvChunk + 12345
	if n > BodyLimit() {
		t.Skipf("limit %d below test body %d", BodyLimit(), n)
	}
	body := make([]byte, n)
	for i := range body {
		body[i] = byte(i * 31)
	}
	c := loopPair()
	got := roundTrip(t, c, &Msg{Type: MsgCall, Seq: 9, Body: body})
	defer got.Release()
	if !bytes.Equal(got.Body, body) {
		t.Fatal("chunked body corrupted in transit")
	}
}

// A truncated connection that dies mid-body surfaces an error, not a
// short body.
func TestTruncatedBodyFails(t *testing.T) {
	raw := &loopConn{}
	var h [headerLen]byte
	putHeader(h[:], MsgCall, 1, 100)
	raw.Write(h[:])
	raw.Write(make([]byte, 40)) // 60 bytes short
	if _, err := NewConn(raw).Recv(); err == nil {
		t.Fatal("truncated body produced a message")
	}
}

// Released messages are recycled: steady-state Recv reuses pooled
// bodies instead of allocating fresh ones.
func TestReleaseRecyclesBodies(t *testing.T) {
	c := loopPair()
	body := bytes.Repeat([]byte("x"), 512)
	reused := false
	var lastPtr *byte
	for i := 0; i < 8; i++ {
		got := roundTrip(t, c, &Msg{Type: MsgCall, Seq: uint64(i), Body: body})
		if len(got.Body) > 0 && lastPtr == &got.Body[0] {
			reused = true
		}
		lastPtr = &got.Body[0]
		got.Release()
	}
	if !reused {
		t.Error("no pooled body was ever reused across 8 release/recv cycles")
	}
}

// Releasing twice, releasing nil, and releasing a caller-built message
// must all be harmless.
func TestReleaseEdgeCases(t *testing.T) {
	var nilMsg *Msg
	nilMsg.Release()
	caller := &Msg{Type: MsgCall, Body: []byte("abc")}
	caller.Release()
	if string(caller.Body) != "abc" {
		t.Error("Release mutated a caller-owned message")
	}
	c := loopPair()
	got := roundTrip(t, c, &Msg{Type: MsgCall, Body: []byte("abc")})
	got.Release()
	got.Release()
}

// With pooling disabled (the ablation switch) every Recv allocates a
// fresh caller-owned message.
func TestSetPoolingAblation(t *testing.T) {
	prev := SetPooling(false)
	defer SetPooling(prev)
	if !prev {
		t.Fatal("pooling should default to on")
	}
	c := loopPair()
	got := roundTrip(t, c, &Msg{Type: MsgCall, Body: []byte("abc")})
	if got.pooled {
		t.Error("message pooled despite SetPooling(false)")
	}
	got.Release() // must be a no-op
	if string(got.Body) != "abc" {
		t.Error("unpooled body mutated by Release")
	}
}
