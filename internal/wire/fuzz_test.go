package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// Fuzz targets for the two fixed-layout parsers a hostile peer reaches
// before any session state exists: the 16-byte frame header (Recv) and
// the MsgCancel body (ParseCancelBody). `make fuzzsmoke` runs each for a
// few seconds; `go test -fuzz` digs deeper.

// FuzzFrameHeader feeds an arbitrary byte stream to Conn.Recv and checks
// the parser's contract: every accepted frame has a valid type and a body
// within the shared limit, rejection never panics, and the loop always
// terminates (each accepted frame consumes at least a header's worth of
// input).
func FuzzFrameHeader(f *testing.F) {
	var h [headerLen]byte
	putHeader(h[:], MsgCall, 7, 4)
	f.Add(append(append([]byte{}, h[:]...), 1, 2, 3, 4))
	putHeader(h[:], MsgCancel, 0, 12)
	f.Add(append(append([]byte{}, h[:]...), AppendCancelBody(nil, 42)...))
	putHeader(h[:], MsgHello, 0, 0)
	f.Add(append([]byte{}, h[:]...))
	// Torn header, bad magic, hostile type/length bytes.
	f.Add([]byte{0xC1, 0xA0})
	f.Add(bytes.Repeat([]byte{0xFF}, headerLen+8))
	putHeader(h[:], MsgCall, 1, 100)
	f.Add(append(append([]byte{}, h[:]...), make([]byte, 40)...)) // truncated body

	f.Fuzz(func(t *testing.T, data []byte) {
		conn := &loopConn{}
		conn.buf.Write(data)
		c := NewConn(conn)
		for {
			m, err := c.Recv()
			if err != nil {
				return // rejection or EOF ends the stream; no panic is the property
			}
			if !validType(m.Type) {
				t.Fatalf("Recv accepted invalid type %d", m.Type)
			}
			if len(m.Body) > BodyLimit() {
				t.Fatalf("Recv accepted %d-byte body past the %d limit", len(m.Body), BodyLimit())
			}
			if m.Type == MsgCancel {
				// The demux hands cancel bodies straight to this parser;
				// it must never panic on what Recv lets through.
				_, _ = ParseCancelBody(m.Body)
			}
			m.Release()
		}
	})
}

// FuzzCancelBody checks ParseCancelBody against arbitrary bodies: no
// panic, the seq-count bound holds, and every accepted body round-trips
// bit-exactly through AppendCancelBody.
func FuzzCancelBody(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendCancelBody(nil))
	f.Add(AppendCancelBody(nil, 1, 2, 3))
	f.Add(AppendCancelBody(nil, 0, ^uint64(0)))
	f.Add(binary.BigEndian.AppendUint32(nil, 5)) // count lies about the body
	f.Add(binary.BigEndian.AppendUint32(nil, maxCancelSeqs+1))

	f.Fuzz(func(t *testing.T, body []byte) {
		seqs, err := ParseCancelBody(body)
		if err != nil {
			if seqs != nil {
				t.Fatal("ParseCancelBody returned seqs alongside an error")
			}
			return
		}
		if len(seqs) > maxCancelSeqs {
			t.Fatalf("accepted %d seqs past the %d limit", len(seqs), maxCancelSeqs)
		}
		re := AppendCancelBody(nil, seqs...)
		if !bytes.Equal(re, body) {
			t.Fatalf("round trip mismatch: %x reparsed from %x", re, body)
		}
	})
}
