package wire

import "testing"

// Allocation guards pinning the pooled fast path: a steady-state framed
// round trip (Send, Recv, Release) must not allocate per message once
// the pool is warm. These run under -race in tier-1; a regression that
// reintroduces per-frame allocation fails here before it shows up in
// the BENCH_*.json trajectory.

// maxRoundTripAllocs is the pinned budget for one Send+Recv+Release
// cycle. The pooled path measures 0; the single unit of slack absorbs a
// rare mid-run GC clearing the pool.
const maxRoundTripAllocs = 1

func TestAllocsSendRecvRoundTrip(t *testing.T) {
	c := loopPair()
	body := make([]byte, 256)
	m := &Msg{Type: MsgCall, Seq: 1, Body: body}
	// Warm the pool and the bufio buffers.
	for i := 0; i < 16; i++ {
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got.Release()
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got.Release()
	})
	if allocs > maxRoundTripAllocs {
		t.Errorf("send/recv round trip allocates %.1f objects/op, budget %d", allocs, maxRoundTripAllocs)
	}
}

// Empty-body frames (heartbeats, syncs) must also ride the pool.
func TestAllocsHeartbeatFrames(t *testing.T) {
	c := loopPair()
	m := &Msg{Type: MsgPing, Seq: 7}
	for i := 0; i < 16; i++ {
		c.Send(m)
		got, _ := c.Recv()
		got.Release()
	}
	allocs := testing.AllocsPerRun(200, func() {
		c.Send(m)
		got, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got.Release()
	})
	if allocs > maxRoundTripAllocs {
		t.Errorf("heartbeat round trip allocates %.1f objects/op, budget %d", allocs, maxRoundTripAllocs)
	}
}
