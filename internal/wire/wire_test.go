package wire

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func connPair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := Pipe()
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func TestMsgTypeString(t *testing.T) {
	if MsgCall.String() != "Call" {
		t.Errorf("MsgCall.String() = %q", MsgCall.String())
	}
	if got := MsgType(200).String(); got != "MsgType(200)" {
		t.Errorf("unknown type String() = %q", got)
	}
}

func TestSendRecvRoundTrip(t *testing.T) {
	a, b := connPair(t)
	want := &Msg{Type: MsgCall, Seq: 42, Body: []byte("hello world")}
	go func() {
		if err := a.Send(want); err != nil {
			t.Errorf("send: %v", err)
		}
	}()
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if got.Type != want.Type || got.Seq != want.Seq || !bytes.Equal(got.Body, want.Body) {
		t.Errorf("got %+v want %+v", got, want)
	}
}

func TestEmptyBody(t *testing.T) {
	a, b := connPair(t)
	go func() { a.Send(&Msg{Type: MsgSync, Seq: 1}) }()
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if len(got.Body) != 0 {
		t.Errorf("body = %v, want empty", got.Body)
	}
}

func TestBatchedWritesArriveInOrder(t *testing.T) {
	a, b := connPair(t)
	const n = 50
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Write(&Msg{Type: MsgCall, Seq: uint64(i), Body: []byte{byte(i)}}); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
		if err := a.Flush(); err != nil {
			t.Errorf("flush: %v", err)
		}
	}()
	for i := 0; i < n; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m.Seq != uint64(i) || m.Body[0] != byte(i) {
			t.Fatalf("message %d out of order: seq=%d body=%v", i, m.Seq, m.Body)
		}
	}
}

func TestRecvOnClosedConn(t *testing.T) {
	a, b := Pipe()
	a.Close()
	b.Close()
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("recv on closed conn: err = %v, want ErrClosed", err)
	}
}

func TestRecvAfterPeerClose(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	a.Close()
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("recv after peer close: err = %v, want ErrClosed", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	ac, bc := net.Pipe()
	defer bc.Close()
	go func() {
		defer ac.Close()
		junk := make([]byte, headerLen)
		junk[0] = 0xff
		ac.Write(junk)
	}()
	b := NewConn(bc)
	if _, err := b.Recv(); !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestOversizeWriteRejected(t *testing.T) {
	a, _ := connPair(t)
	m := &Msg{Type: MsgCall, Body: make([]byte, BodyLimit()+1)}
	if err := a.Write(m); !errors.Is(err, ErrTooBig) {
		t.Errorf("err = %v, want ErrTooBig", err)
	}
}

func TestOversizeHeaderRejected(t *testing.T) {
	ac, bc := net.Pipe()
	defer bc.Close()
	go func() {
		defer ac.Close()
		var h [headerLen]byte
		putHeader(h[:], MsgCall, 1, BodyLimit()+1)
		ac.Write(h[:])
	}()
	b := NewConn(bc)
	if _, err := b.Recv(); !errors.Is(err, ErrTooBig) {
		t.Errorf("err = %v, want ErrTooBig", err)
	}
}

func TestConcurrentWriters(t *testing.T) {
	a, b := connPair(t)
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := a.Send(&Msg{Type: MsgCall, Seq: uint64(w*1000 + i)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(w)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < writers*per; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		if seen[m.Seq] {
			t.Fatalf("duplicate seq %d", m.Seq)
		}
		seen[m.Seq] = true
	}
	wg.Wait()
	if len(seen) != writers*per {
		t.Errorf("received %d unique messages, want %d", len(seen), writers*per)
	}
}

func TestStats(t *testing.T) {
	a, b := connPair(t)
	go func() {
		a.Send(&Msg{Type: MsgCall, Seq: 1})
		a.Send(&Msg{Type: MsgCall, Seq: 2})
	}()
	b.Recv()
	b.Recv()
	if sent, _ := a.Stats(); sent != 2 {
		t.Errorf("a sent = %d, want 2", sent)
	}
	if _, recvd := b.Stats(); recvd != 2 {
		t.Errorf("b received = %d, want 2", recvd)
	}
}

func TestCloseIdempotent(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	if err := a.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// Property: any (type, seq, body) frame survives the wire intact, including
// bodies that contain the magic bytes.
func TestQuickFrameRoundTrip(t *testing.T) {
	a, b := connPair(t)
	f := func(ty uint8, seq uint64, body []byte) bool {
		// Map the arbitrary byte into the valid type range; unknown
		// types are rejected at Write (see TestUnknownTypeRejected).
		m := &Msg{Type: MsgHello + MsgType(ty)%(MsgPong-MsgHello+1), Seq: seq, Body: body}
		errc := make(chan error, 1)
		go func() { errc <- a.Send(m) }()
		got, err := b.Recv()
		if err != nil || <-errc != nil {
			return false
		}
		return got.Type == m.Type && got.Seq == seq && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("accept: %v", r.err)
	}
	t.Cleanup(func() {
		client.Close()
		r.c.Close()
	})
	return client, r.c
}

func TestSimLinkAddsLatency(t *testing.T) {
	clientRaw, serverRaw := tcpPair(t)
	const lat = 20 * time.Millisecond
	client := NewConn(NewSimLink(clientRaw, lat, 0))
	server := NewConn(serverRaw)

	start := time.Now()
	go client.Send(&Msg{Type: MsgCall, Seq: 7})
	if _, err := server.Recv(); err != nil {
		t.Fatalf("recv: %v", err)
	}
	elapsed := time.Since(start)
	if elapsed < lat {
		t.Errorf("message arrived in %v, want >= %v", elapsed, lat)
	}
	if elapsed > 50*lat {
		t.Errorf("message took %v, far more than the %v link latency", elapsed, lat)
	}
}

func TestSimLinkPreservesOrderAndContent(t *testing.T) {
	clientRaw, serverRaw := tcpPair(t)
	client := NewConn(NewSimLink(clientRaw, time.Millisecond, 0))
	server := NewConn(serverRaw)
	const n = 20
	go func() {
		for i := 0; i < n; i++ {
			client.Send(&Msg{Type: MsgCall, Seq: uint64(i), Body: []byte(fmt.Sprintf("m%d", i))})
		}
	}()
	for i := 0; i < n; i++ {
		m, err := server.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m.Seq != uint64(i) {
			t.Fatalf("out of order: got seq %d at position %d", m.Seq, i)
		}
	}
}

func TestSimLinkBandwidthDelay(t *testing.T) {
	clientRaw, serverRaw := tcpPair(t)
	// 1 MB/s: a 10 KB body should take ~10 ms of serialization delay.
	link := NewSimLink(clientRaw, 0, 1<<20)
	client := NewConn(link)
	server := NewConn(serverRaw)
	body := make([]byte, 10<<10)
	start := time.Now()
	go client.Send(&Msg{Type: MsgCall, Body: body})
	if _, err := server.Recv(); err != nil {
		t.Fatalf("recv: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("10KB over 1MB/s arrived in %v, want >= 5ms of serialization delay", elapsed)
	}
}

func TestSimLinkWriteAfterClose(t *testing.T) {
	clientRaw, _ := tcpPair(t)
	link := NewSimLink(clientRaw, time.Millisecond, 0)
	if err := link.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := link.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Errorf("write after close: err = %v, want net.ErrClosed", err)
	}
	if err := link.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestSimLinkDrainsOnClose(t *testing.T) {
	clientRaw, serverRaw := tcpPair(t)
	link := NewSimLink(clientRaw, 5*time.Millisecond, 0)
	client := NewConn(link)
	server := NewConn(serverRaw)
	if err := client.Send(&Msg{Type: MsgBye, Seq: 99}); err != nil {
		t.Fatalf("send: %v", err)
	}
	if err := link.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	m, err := server.Recv()
	if err != nil {
		t.Fatalf("final message lost on close: %v", err)
	}
	if m.Type != MsgBye || m.Seq != 99 {
		t.Errorf("got %+v, want Bye/99", m)
	}
}
