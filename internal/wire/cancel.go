package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MsgCancel body layout. A cancel frame names the call sequence numbers
// the sender no longer wants executed: a 4-byte big-endian count followed
// by count 8-byte big-endian call seqs. The frame's own header Seq is 0 —
// cancels are fire-and-forget and never answered. The fixed layout (no
// xdr) keeps the frame parseable by a peer mid-resume, before any
// bundling context exists, and makes the parser a natural fuzz target.

// maxCancelSeqs bounds one cancel frame. A client cancels calls it has in
// flight, which the call window already bounds; anything larger is a
// corrupt or hostile frame and is rejected before allocating.
const maxCancelSeqs = 4096

// ErrBadCancel reports a malformed MsgCancel body.
var ErrBadCancel = errors.New("wire: malformed cancel body")

// AppendCancelBody appends a MsgCancel body naming seqs to dst and
// returns the extended slice.
func AppendCancelBody(dst []byte, seqs ...uint64) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(seqs)))
	for _, s := range seqs {
		dst = binary.BigEndian.AppendUint64(dst, s)
	}
	return dst
}

// ParseCancelBody decodes a MsgCancel body. The returned slice is freshly
// allocated — it does not alias body, so the frame can be released.
func ParseCancelBody(body []byte) ([]uint64, error) {
	if len(body) < 4 {
		return nil, fmt.Errorf("%w: %d-byte body", ErrBadCancel, len(body))
	}
	n := binary.BigEndian.Uint32(body[:4])
	if n > maxCancelSeqs {
		return nil, fmt.Errorf("%w: %d seqs exceeds limit %d", ErrBadCancel, n, maxCancelSeqs)
	}
	if got := (len(body) - 4) / 8; uint32(got) != n || len(body) != 4+int(n)*8 {
		return nil, fmt.Errorf("%w: count %d in %d-byte body", ErrBadCancel, n, len(body))
	}
	seqs := make([]uint64, n)
	for i := range seqs {
		seqs[i] = binary.BigEndian.Uint64(body[4+i*8:])
	}
	return seqs, nil
}
