module clam

go 1.22
