// Tests of the public facade: everything a downstream user touches goes
// through package clam, exercised here exactly as the README shows.
package clam_test

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"clam"
)

// Counter is the README's example class.
type Counter struct {
	mu        sync.Mutex
	total     int64
	observers []func(int64)
}

// Add increases the counter and notifies observers.
func (c *Counter) Add(n int64) {
	c.mu.Lock()
	c.total += n
	total := c.total
	obs := append(([]func(int64))(nil), c.observers...)
	c.mu.Unlock()
	for _, fn := range obs {
		fn(total)
	}
}

// Total reports the current value.
func (c *Counter) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// OnChange registers an observer.
func (c *Counter) OnChange(fn func(int64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observers = append(c.observers, fn)
}

func newFacadeServer(t *testing.T) (*clam.Server, string) {
	t.Helper()
	lib := clam.NewLibrary()
	lib.MustRegister(clam.Class{
		Name:    "counter",
		Version: 1,
		Type:    reflect.TypeOf(&Counter{}),
		New:     func(env any) (any, error) { return &Counter{}, nil },
	})
	srv := clam.NewServer(lib, clam.WithServerLog(func(string, ...any) {}))
	sock := filepath.Join(t.TempDir(), "clam.sock")
	if _, err := srv.Listen("unix", sock); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, sock
}

func TestFacadeReadmeFlow(t *testing.T) {
	_, sock := newFacadeServer(t)
	c, err := clam.Dial("unix", sock, clam.WithClientLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	changes := make(chan int64, 8)
	if err := obj.Call("OnChange", func(n int64) { changes <- n }); err != nil {
		t.Fatal(err)
	}
	if err := obj.Call("Add", int64(2)); err != nil {
		t.Fatal(err)
	}
	if err := obj.Async("Add", int64(3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	var total int64
	if err := obj.CallInto("Total", []any{&total}); err != nil {
		t.Fatal(err)
	}
	if total != 5 {
		t.Errorf("total = %d", total)
	}
	if got := <-changes; got != 2 {
		t.Errorf("first upcall %d", got)
	}
	if got := <-changes; got != 5 {
		t.Errorf("second upcall %d", got)
	}
}

func TestFacadeSelfDial(t *testing.T) {
	srv, _ := newFacadeServer(t)
	c, err := clam.SelfDial(srv, clam.WithClientLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	obj, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := obj.Call("Add", int64(1)); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeTypedStubs(t *testing.T) {
	_, sock := newFacadeServer(t)
	c, err := clam.Dial("unix", sock, clam.WithClientLog(func(string, ...any) {}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rem, err := c.New("counter", 0)
	if err != nil {
		t.Fatal(err)
	}
	var api struct {
		Add   func(int64) error
		Total func() (int64, error)
	}
	if err := rem.Bind(&api); err != nil {
		t.Fatal(err)
	}
	if err := api.Add(6); err != nil {
		t.Fatal(err)
	}
	total, err := api.Total()
	if err != nil || total != 6 {
		t.Errorf("total=%d err=%v", total, err)
	}
}

func TestFacadeGuard(t *testing.T) {
	err := clam.Guard(func() error {
		var p *Counter
		_ = p.total // fault
		return nil
	})
	var fault *clam.Fault
	if !asFault(err, &fault) {
		t.Fatalf("err = %v", err)
	}
}

func asFault(err error, target **clam.Fault) bool {
	for err != nil {
		if f, ok := err.(*clam.Fault); ok {
			*target = f
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestFacadeSchedAndEvents(t *testing.T) {
	s := clam.NewSched()
	defer s.Close()
	var ev clam.TaskEvent
	done := make(chan struct{})
	if err := s.Spawn(func(t *clam.Task) {
		t.Block(&ev)
		close(done)
	}); err != nil {
		t.Fatal(err)
	}
	ev.Signal()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("event never delivered")
	}
}

func TestFacadeUpcallRegistry(t *testing.T) {
	r := clam.NewUpcallRegistry(clam.WithUpcallPolicy(clam.UpcallQueue))
	// No handler yet: the event queues.
	if _, err := r.Post("mouse", int32(1)); err != nil {
		t.Fatal(err)
	}
	if r.Queued("mouse") != 1 {
		t.Fatalf("queued = %d", r.Queued("mouse"))
	}
	var got int32
	if _, err := r.Register("mouse", func(x int32) { got = x }); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Replay("mouse"); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("replayed event payload = %d", got)
	}
}

func ExampleDial() {
	lib := clam.NewLibrary()
	lib.MustRegister(clam.Class{
		Name: "counter", Version: 1, Type: reflect.TypeOf(&Counter{}),
		New: func(env any) (any, error) { return &Counter{}, nil },
	})
	srv := clam.NewServer(lib, clam.WithServerLog(func(string, ...any) {}))
	defer srv.Close()

	c, err := clam.SelfDial(srv, clam.WithClientLog(func(string, ...any) {}))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer c.Close()
	obj, _ := c.New("counter", 0)
	obj.Call("Add", int64(40))
	obj.Call("Add", int64(2))
	var total int64
	obj.CallInto("Total", []any{&total})
	fmt.Println("total:", total)
	// Output: total: 42
}
